"""Bitwise contract of the vectorised ``predict_batch`` path.

The serving acceptance criterion: a batched prediction over m points
returns CPI bitwise-identical to m sequential single-point ``predict``
calls, for every model family.  This is stronger than ``allclose`` — the
design-matrix reduction (``repro.models.base.design_dot`` /
``layer_dot``) is built so its accumulation order does not depend on the
number of rows, which is precisely what naive BLAS ``@`` does not
guarantee.  These tests pin that invariant per family, through
``predict_with_provenance``, and at the 10k-point acceptance scale.
"""

import numpy as np
import pytest

from repro.models.base import design_dot, layer_dot
from repro.models.linear import LinearInteractionModel
from repro.models.mlp import MLPModel
from repro.models.rbf import build_rbf_from_tree
from repro.models.spline import SplineModel
from repro.models.tree import RegressionTree

DIM = 4


def response(x):
    return 1.0 + np.sin(2.5 * x[:, 0]) + 0.5 * x[:, 1] * x[:, 2] - x[:, 3]


@pytest.fixture(scope="module")
def training():
    rng = np.random.default_rng(1234)
    x = rng.random((90, DIM))
    y = response(x) + 0.02 * rng.standard_normal(90)
    return x, y


def fit_family(name, training):
    x, y = training
    if name == "rbf":
        model, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
    elif name == "tree":
        model = RegressionTree(x, y, p_min=2)
    elif name == "linear":
        model = LinearInteractionModel.fit(x, y)
    elif name == "spline":
        model = SplineModel.fit(x, y)
    else:
        model = MLPModel.fit(x, y, hidden=(8,), epochs=40, seed=5)
    return model


FAMILIES = ["rbf", "tree", "linear", "spline", "mlp"]


@pytest.mark.parametrize("family", FAMILIES)
class TestBatchBitwise:
    def test_batch_equals_sequential_single_point_calls(
            self, family, training, rng):
        model = fit_family(family, training)
        points = rng.random((257, DIM))  # odd size: no blocking alignment
        batched = model.predict_batch(points)
        sequential = np.array(
            [model.predict(p[np.newaxis, :])[0] for p in points])
        np.testing.assert_array_equal(batched, sequential)

    def test_batch_size_never_perturbs_bits(self, family, training, rng):
        # The same point must produce the same bits whether it travels
        # alone, in a pair, or buried in a large batch.
        model = fit_family(family, training)
        points = rng.random((64, DIM))
        full = model.predict_batch(points)
        alone = model.predict_batch(points[:1])
        pair = model.predict_batch(points[:2])
        assert full[0] == alone[0]
        np.testing.assert_array_equal(full[:2], pair)

    def test_single_point_vector_is_accepted(self, family, training, rng):
        model = fit_family(family, training)
        point = rng.random(DIM)
        flat = model.predict_batch(point)
        assert flat.shape == (1,)
        assert flat[0] == model.predict(point[np.newaxis, :])[0]


@pytest.mark.parametrize("family", FAMILIES)
def test_provenance_values_ride_the_batch_path(family, training, rng):
    x, y = training
    model = fit_family(family, training)
    model.calibrate(x, y)
    points = rng.random((50, DIM))
    prov = model.predict_with_provenance(points)
    np.testing.assert_array_equal(prov.values, model.predict_batch(points))
    assert prov.lower.shape == prov.values.shape
    assert prov.extrapolated.dtype == bool


def test_ten_thousand_point_acceptance_batch(training):
    # The ISSUE's acceptance criterion, verbatim: 10k batched CPI values
    # bitwise-identical to 10k sequential Model.predict calls, with
    # per-point uncertainty and extrapolation flags.
    x, y = training
    model, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
    model.calibrate(x, y)
    points = np.random.default_rng(20060101).random((10_000, DIM))
    prov = model.predict_with_provenance(points)
    sequential = np.array(
        [model.predict(p[np.newaxis, :])[0] for p in points])
    np.testing.assert_array_equal(prov.values, sequential)
    assert len(prov.lower) == len(prov.upper) == 10_000
    assert len(prov.extrapolated) == 10_000


class TestReductionSeams:
    def test_design_dot_matches_matmul_values(self, rng):
        matrix = rng.random((37, 9))
        weights = rng.random(9)
        np.testing.assert_allclose(
            design_dot(matrix, weights), matrix @ weights,
            rtol=1e-12, atol=0.0)

    def test_design_dot_rows_are_batch_invariant(self, rng):
        matrix = rng.random((129, 23))
        weights = rng.random(23)
        full = design_dot(matrix, weights)
        for k in (1, 2, 3, 7, 128):
            np.testing.assert_array_equal(
                design_dot(matrix[:k], weights), full[:k])

    def test_layer_dot_rows_are_batch_invariant(self, rng):
        acts = rng.random((65, 11))
        weights = rng.random((11, 6))
        full = layer_dot(acts, weights)
        for k in (1, 2, 5, 64):
            np.testing.assert_array_equal(
                layer_dot(acts[:k], weights), full[:k])
