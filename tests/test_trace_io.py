"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.simulator.simulator import simulate
from repro.simulator.config import ProcessorConfig
from repro.simulator.trace_io import load_trace, save_trace
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import PROFILES


@pytest.fixture
def trace():
    return generate_trace(PROFILES["twolf"], 3000, seed=13)


class TestRoundTrip:
    def test_arrays_identical(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(path)
        for field in ("op", "src1", "src2", "addr", "pc", "taken"):
            np.testing.assert_array_equal(getattr(loaded, field), getattr(trace, field))
        assert loaded.name == trace.name

    def test_simulation_identical(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(path)
        config = ProcessorConfig()
        assert simulate(config, loaded).cpi == simulate(config, trace).cpi

    def test_suffix_added(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_compression_is_effective(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.npz")
        raw_bytes = sum(
            getattr(trace, f).nbytes
            for f in ("op", "src1", "src2", "addr", "pc", "taken")
        )
        assert path.stat().st_size < raw_bytes

    def test_unknown_version_rejected(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.npz")
        payload = dict(np.load(path, allow_pickle=False))
        payload["format_version"] = np.array([99])
        np.savez_compressed(tmp_path / "bad.npz", **payload)
        with pytest.raises(ValueError):
            load_trace(tmp_path / "bad.npz")

    def test_loaded_trace_validates(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.npz")
        load_trace(path).validate()  # load_trace validates too; no raise
