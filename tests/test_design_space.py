"""Tests for the design-space specification layer."""

import numpy as np
import pytest

from repro.core.design_space import (
    DesignSpace,
    Parameter,
    paper_design_space,
    paper_test_space,
)


class TestParameter:
    def test_linear_roundtrip(self):
        p = Parameter("x", 10, 20, None, "linear")
        assert p.to_unit(10) == pytest.approx(0.0)
        assert p.to_unit(20) == pytest.approx(1.0)
        assert p.to_unit(15) == pytest.approx(0.5)
        assert p.from_unit(0.5) == pytest.approx(15)

    def test_log_roundtrip(self):
        p = Parameter("s", 8, 64, None, "log")
        assert p.to_unit(8) == pytest.approx(0.0)
        assert p.to_unit(64) == pytest.approx(1.0)
        # Geometric midpoint maps to the unit-cube midpoint.
        assert p.from_unit(0.5) == pytest.approx(np.sqrt(8 * 64), rel=1e-9)

    def test_levels_snap(self):
        p = Parameter("s", 8, 64, 4, "log", integer=True)
        grid = p.grid()
        assert list(grid) == [8, 16, 32, 64]
        # Arbitrary unit values snap onto the grid.
        assert p.from_unit(0.4) in grid
        assert p.from_unit(0.99) == 64

    def test_sample_dependent_levels(self):
        p = Parameter("r", 24, 128, None, "linear", integer=True)
        with pytest.raises(ValueError):
            p.grid()
        assert len(p.grid(num_levels=5)) == 5

    def test_integer_rounding(self):
        p = Parameter("d", 7, 24, 18, "linear", integer=True)
        values = p.from_unit(np.linspace(0, 1, 50))
        assert np.all(values == np.round(values))

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Parameter("x", 5, 5, None)
        with pytest.raises(ValueError):
            Parameter("x", 10, 5, None)

    def test_log_requires_positive(self):
        with pytest.raises(ValueError):
            Parameter("x", -1, 5, None, "log")

    def test_unknown_transform(self):
        with pytest.raises(ValueError):
            Parameter("x", 0, 1, None, "cubic")

    def test_from_unit_clips(self):
        p = Parameter("x", 0, 10, None)
        assert p.from_unit(-0.5) == 0
        assert p.from_unit(1.5) == 10


class TestDesignSpace:
    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            DesignSpace([])

    def test_duplicate_names_rejected(self):
        p = Parameter("x", 0, 1, None)
        with pytest.raises(ValueError):
            DesignSpace([p, p])

    def test_unknown_fraction_base_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace([Parameter("f", 0.2, 0.8, None, fraction_of="nope")])

    def test_dict_array_roundtrip(self, small_space):
        point = {"depth": 10, "size_kb": 16, "frac": 0.5}
        arr = small_space.as_array(point)
        assert small_space.as_dict(arr) == point

    def test_as_array_missing_key(self, small_space):
        with pytest.raises(KeyError):
            small_space.as_array({"depth": 10})

    def test_encode_decode_roundtrip(self, small_space):
        pts = np.array([[4, 8, 0.25], [20, 64, 0.75], [12, 16, 0.5]])
        unit = small_space.encode(pts)
        assert unit.min() >= 0 and unit.max() <= 1
        back = small_space.decode(unit)
        np.testing.assert_allclose(back[:, 0], pts[:, 0])  # integers preserved
        np.testing.assert_allclose(back[:, 1], pts[:, 1])

    def test_decode_snaps_levels(self, small_space):
        unit = np.array([[0.5, 0.4, 0.5]])
        phys = small_space.decode(unit)
        assert phys[0, 1] in (8, 16, 32, 64)

    def test_resolve_fraction(self, small_space):
        resolved = small_space.resolve({"depth": 10, "size_kb": 16, "frac": 0.5})
        assert resolved["frac"] == 5  # 0.5 * depth(10)

    def test_resolve_fraction_minimum_one(self, small_space):
        resolved = small_space.resolve({"depth": 4, "size_kb": 16, "frac": 0.25})
        assert resolved["frac"] >= 1

    def test_contains(self, small_space):
        assert small_space.contains({"depth": 10, "size_kb": 16, "frac": 0.5})
        assert not small_space.contains({"depth": 30, "size_kb": 16, "frac": 0.5})

    def test_random_unit_points(self, small_space, rng):
        pts = small_space.random_unit_points(20, rng)
        assert pts.shape == (20, 3)
        assert pts.min() >= 0 and pts.max() <= 1
        with pytest.raises(ValueError):
            small_space.random_unit_points(0, rng)

    def test_index_and_getitem(self, small_space):
        assert small_space.index("size_kb") == 1
        assert small_space["size_kb"].transform == "log"
        with pytest.raises(KeyError):
            small_space["missing"]

    def test_describe_mentions_all_parameters(self, small_space):
        text = small_space.describe()
        for name in small_space.names:
            assert name in text


class TestPaperSpaces:
    def test_table1_dimensions(self):
        space = paper_design_space()
        assert space.dimension == 9
        assert space.names[0] == "pipe_depth"

    def test_table1_ranges(self):
        space = paper_design_space()
        assert (space["pipe_depth"].low, space["pipe_depth"].high) == (7, 24)
        assert (space["rob_size"].low, space["rob_size"].high) == (24, 128)
        assert (space["l2_size_kb"].low, space["l2_size_kb"].high) == (256, 8192)
        assert (space["l2_lat"].low, space["l2_lat"].high) == (5, 20)
        assert (space["dl1_lat"].low, space["dl1_lat"].high) == (1, 4)

    def test_table1_levels_and_transforms(self):
        space = paper_design_space()
        assert space["pipe_depth"].levels == 18
        assert space["l2_size_kb"].levels == 6
        assert space["l2_size_kb"].transform == "log"
        assert space["il1_size_kb"].levels == 4
        assert space["rob_size"].levels is None  # 'S' in the paper

    def test_queue_parameters_are_fractions_of_rob(self):
        space = paper_design_space()
        assert space["iq_frac"].fraction_of == "rob_size"
        assert space["lsq_frac"].fraction_of == "rob_size"
        assert (space["iq_frac"].low, space["iq_frac"].high) == (0.25, 0.75)

    def test_table2_is_restricted(self):
        train = paper_design_space()
        test = paper_test_space()
        for name in ("pipe_depth", "rob_size", "iq_frac", "lsq_frac", "l2_lat"):
            assert test[name].low >= train[name].low
            assert test[name].high <= train[name].high

    def test_table2_ranges(self):
        test = paper_test_space()
        assert (test["pipe_depth"].low, test["pipe_depth"].high) == (9, 22)
        assert (test["rob_size"].low, test["rob_size"].high) == (37, 115)
        assert (test["iq_frac"].low, test["iq_frac"].high) == (0.31, 0.69)
        assert (test["l2_lat"].low, test["l2_lat"].high) == (7, 18)

    def test_test_space_cache_sizes_are_powers_of_two(self, rng):
        test = paper_test_space()
        unit = test.random_unit_points(64, rng)
        phys = test.decode(unit)
        for name in ("l2_size_kb", "il1_size_kb", "dl1_size_kb"):
            col = phys[:, test.index(name)].astype(int)
            assert np.all((col & (col - 1)) == 0), f"{name} not power of two"
