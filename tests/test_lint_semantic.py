"""Tests for the project-wide semantic analysis layer and its four rules.

Each rule gets fixture packages with positive, negative and cross-module
cases; the acceptance contract is that every pass fires *across a call
boundary* (e.g. ``metric -> helper -> time.time()`` trips DET001 even
though the helper alone is clean).  The fact cache, SARIF output,
``--changed`` incremental mode and the real-tree worklists are covered
at the end.
"""

import json
import os
import subprocess
import textwrap

import pytest

from repro.lint import LintRunner
from repro.lint.core import FileContext
from repro.lint.reporters import sarif_document
from repro.lint.runner import collect_files
from repro.lint.semantic import (
    FactCache,
    build_project,
    extract_summary,
    module_name_for_path,
    source_hash,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

SEMANTIC_RULES = {"DET001", "MUT001", "PAR001", "VEC001"}


def lint_tree(tmp_path, files, select=SEMANTIC_RULES):
    """Write ``{relpath: source}`` fixtures under ``tmp_path`` and lint."""
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return LintRunner(select=set(select)).run([str(tmp_path)])


def rule_ids(result):
    return sorted(f.rule for f in result.findings)


# -- DET001 ----------------------------------------------------------------


class TestDET001:
    def test_fires_across_a_call_boundary(self, tmp_path):
        # metric -> helpers.compute -> time.time(): the helper alone is a
        # perfectly ordinary function; only reachability makes it a bug.
        result = lint_tree(tmp_path, {
            "simpkg/__init__.py": "",
            "simpkg/helpers.py": """\
                import time

                def compute(x):
                    return x + time.time()
                """,
            "simpkg/runner.py": """\
                from simpkg import helpers

                class SimulationRunner:
                    def metric(self, points, name):
                        return [helpers.compute(p) for p in points]
                """,
        })
        assert rule_ids(result) == ["DET001"]
        finding = result.findings[0]
        assert finding.path.endswith("helpers.py")
        assert "wall clock" in finding.message
        assert "SimulationRunner.metric" in finding.message
        assert "helpers.compute" in finding.message

    def test_fires_through_self_method_chains(self, tmp_path):
        result = lint_tree(tmp_path, {
            "runner.py": """\
                import os

                class SimulationRunner:
                    def metric(self, points, name):
                        return self._lookup(name)

                    def _lookup(self, name):
                        return os.environ.get(name)
                """,
        })
        assert rule_ids(result) == ["DET001"]
        assert "environment" in result.findings[0].message

    def test_dict_order_and_fs_listing_witnesses(self, tmp_path):
        result = lint_tree(tmp_path, {
            "runner.py": """\
                import os

                class ProcessorConfig:
                    def key(self):
                        names = [k for k in vars(self)]
                        files = os.listdir(".")
                        return names, files
                """,
        })
        assert rule_ids(result) == ["DET001", "DET001"]
        messages = " ".join(f.message for f in result.findings)
        assert "namespace-order" in messages
        assert "filesystem" in messages

    def test_unreachable_nondeterminism_is_not_flagged(self, tmp_path):
        # time.time() in a function nothing cache-keyed reaches is fine
        # (that is RNG001/OBS002 territory, not DET001's).
        result = lint_tree(tmp_path, {
            "runner.py": """\
                import time

                def wall_clock_logger():
                    return time.time()

                class SimulationRunner:
                    def metric(self, points, name):
                        return [p * 2 for p in points]
                """,
        })
        assert rule_ids(result) == []

    def test_seeded_generators_are_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "runner.py": """\
                import numpy as np

                class SimulationRunner:
                    def metric(self, points, name):
                        rng = np.random.default_rng(1234)
                        return rng.normal(size=len(points))
                """,
        })
        assert rule_ids(result) == []

    def test_global_rng_reachable_from_metric_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "runner.py": """\
                import numpy as np

                def jitter(x):
                    return x + np.random.random()

                class SimulationRunner:
                    def metric(self, points, name):
                        return [jitter(p) for p in points]
                """,
        })
        assert rule_ids(result) == ["DET001"]
        assert "global NumPy RNG" in result.findings[0].message


# -- MUT001 ----------------------------------------------------------------


class TestMUT001:
    def test_subscript_write_through_alias(self, tmp_path):
        result = lint_tree(tmp_path, {
            "use.py": """\
                def normalise(runner, point):
                    res = runner.result_at(point)
                    alias = res
                    alias["cpi"] = 0.0
                    return res
                """,
        })
        assert rule_ids(result) == ["MUT001"]
        assert "result_at()" in result.findings[0].message

    def test_mutating_method_call_on_cached_value(self, tmp_path):
        result = lint_tree(tmp_path, {
            "use.py": """\
                def merge(runner, point, extra):
                    res = runner.result_at(point)
                    res.update(extra)
                    return res
                """,
        })
        assert rule_ids(result) == ["MUT001"]

    def test_cache_subscript_reads_are_protected(self, tmp_path):
        result = lint_tree(tmp_path, {
            "use.py": """\
                class Store:
                    def poke(self, key):
                        entry = self._cache[key]
                        entry["hits"] = 0
                        hit = self._cache.get(key)
                        hit.clear()
                """,
        })
        assert rule_ids(result) == ["MUT001", "MUT001"]

    def test_copy_before_modifying_is_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "use.py": """\
                def normalise(runner, point):
                    res = dict(runner.result_at(point))
                    res["cpi"] = 0.0
                    return res
                """,
        })
        assert rule_ids(result) == []

    def test_writing_a_new_cache_slot_is_clean(self, tmp_path):
        # Filling the cache is the cache's job; only mutating an *entry*
        # (one level deeper) corrupts previously returned values.
        result = lint_tree(tmp_path, {
            "use.py": """\
                class Store:
                    def fill(self, key, value):
                        self._cache[key] = value

                    def corrupt(self, key):
                        self._cache[key]["cpi"] = 0.0
                """,
        })
        assert rule_ids(result) == ["MUT001"]
        assert result.findings[0].line == 6


# -- PAR001 ----------------------------------------------------------------


class TestPAR001:
    def test_lambda_and_nested_function_payloads(self, tmp_path):
        result = lint_tree(tmp_path, {
            "fan.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def run(data):
                    def work(x):
                        return x + 1
                    with ProcessPoolExecutor() as pool:
                        a = list(pool.map(lambda x: x * 2, data))
                        b = list(pool.map(work, data))
                    return a, b
                """,
        })
        assert rule_ids(result) == ["PAR001", "PAR001"]
        messages = " ".join(f.message for f in result.findings)
        assert "lambda" in messages
        assert "'work' is a function defined inside a function" in messages

    def test_open_handle_submission(self, tmp_path):
        result = lint_tree(tmp_path, {
            "fan.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def run(worker, path):
                    fh = open(path)
                    with ProcessPoolExecutor() as pool:
                        fut = pool.submit(worker, fh)
                    return fut.result()
                """,
        })
        assert rule_ids(result) == ["PAR001"]
        assert "open file handle" in result.findings[0].message

    def test_module_level_worker_is_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "fan.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def work(x):
                    return x + 1

                def run(data):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(work, data))
                """,
        })
        assert rule_ids(result) == []

    def test_pool_bound_to_a_variable(self, tmp_path):
        result = lint_tree(tmp_path, {
            "fan.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def run(data):
                    pool = ProcessPoolExecutor(max_workers=2)
                    return list(pool.map(lambda x: x, data))
                """,
        })
        assert rule_ids(result) == ["PAR001"]

    def test_thread_pools_are_not_flagged(self, tmp_path):
        # Threads share an address space: no pickling involved.
        result = lint_tree(tmp_path, {
            "fan.py": """\
                from concurrent.futures import ThreadPoolExecutor

                def run(data):
                    with ThreadPoolExecutor() as pool:
                        return list(pool.map(lambda x: x, data))
                """,
        })
        assert rule_ids(result) == []


# -- VEC001 ----------------------------------------------------------------


HOT_INIT = {
    "repro/__init__.py": "",
    "repro/simulator/__init__.py": "",
}


class TestVEC001:
    def test_loop_over_constructed_array_in_hot_module(self, tmp_path):
        result = lint_tree(tmp_path, {
            **HOT_INIT,
            "repro/simulator/cache.py": """\
                import numpy as np

                def walk(n):
                    addrs = np.arange(n)
                    total = 0
                    for a in addrs:
                        total += int(a)
                    return total
                """,
        })
        assert rule_ids(result) == ["VEC001"]
        finding = result.findings[0]
        assert finding.severity == "note"
        assert "trip count: len(addrs)" in finding.message
        assert result.ok  # notes never fail a run

    def test_cross_module_return_type_via_call_graph(self, tmp_path):
        # make_grid's ndarray-ness is only visible through the call graph.
        result = lint_tree(tmp_path, {
            **HOT_INIT,
            "repro/simulator/grid.py": """\
                import numpy as np

                def make_grid():
                    return np.linspace(0.0, 1.0, 64)
                """,
            "repro/simulator/cache.py": """\
                from repro.simulator.grid import make_grid

                def consume():
                    out = []
                    for v in make_grid():
                        out.append(v * 2)
                    return out
                """,
        })
        assert rule_ids(result) == ["VEC001"]
        assert result.findings[0].path.endswith("cache.py")

    def test_annotated_parameter_and_range_over_len(self, tmp_path):
        result = lint_tree(tmp_path, {
            **HOT_INIT,
            "repro/simulator/tlb.py": """\
                import numpy as np

                def scan(pages: np.ndarray):
                    hits = 0
                    for i in range(len(pages)):
                        hits += int(pages[i])
                    return hits
                """,
        })
        assert rule_ids(result) == ["VEC001"]
        assert "len(pages)" in result.findings[0].message

    def test_loops_outside_hot_modules_are_silent(self, tmp_path):
        result = lint_tree(tmp_path, {
            **HOT_INIT,
            "repro/simulator/report.py": """\
                import numpy as np

                def render(values):
                    arr = np.asarray(values)
                    for v in arr:
                        print(v)
                """,
        })
        assert rule_ids(result) == []

    def test_list_loops_in_hot_modules_are_silent(self, tmp_path):
        result = lint_tree(tmp_path, {
            **HOT_INIT,
            "repro/simulator/cache.py": """\
                def walk(lines):
                    total = 0
                    for line in lines:
                        total += line
                    return total
                """,
        })
        assert rule_ids(result) == []


# -- real-tree contracts ---------------------------------------------------


@pytest.fixture(scope="module")
def src_project():
    files = collect_files([SRC])
    contexts = []
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            contexts.append(FileContext.from_source(path, fh.read()))
    return build_project(contexts)


def test_vec001_emits_the_roadmap_worklist(src_project):
    from repro.lint.rules.semantic import VectorisationRule

    findings = VectorisationRule().check(src_project)
    assert findings, "known hot loops must appear in the VEC001 worklist"
    paths = {os.path.relpath(f.path, REPO_ROOT).replace(os.sep, "/")
             for f in findings}
    assert "src/repro/models/rbf.py" in paths
    assert "src/repro/obs/prof/targets.py" in paths
    for finding in findings:
        assert finding.severity == "note"
        assert finding.line > 0
        assert "trip count" in finding.message


#: The VEC001 worklist may only shrink.  PR 7 vectorised the cache/TLB
#: access path, leaving exactly these two deliberate scalar loops: the
#: RBFNetwork.describe() rendering loop and the metrics-merge fixture
#: setup in the bench targets.  Vectorising one lowers the ceiling;
#: adding a new ndarray loop to a hot-path module fails this gate.
VEC001_CEILING = 2
VEC001_ALLOWED_FILES = {
    "src/repro/models/rbf.py",
    "src/repro/obs/prof/targets.py",
}


def test_vec001_worklist_only_shrinks(src_project):
    from repro.lint.rules.semantic import VectorisationRule

    findings = VectorisationRule().check(src_project)
    rendered = "\n".join(f"{f.path}:{f.line} {f.message}" for f in findings)
    assert len(findings) <= VEC001_CEILING, (
        f"VEC001 worklist grew past {VEC001_CEILING}; vectorise the new "
        f"loop (or take the scalar-oracle fallback shape):\n{rendered}"
    )
    paths = {os.path.relpath(f.path, REPO_ROOT).replace(os.sep, "/")
             for f in findings}
    assert paths <= VEC001_ALLOWED_FILES, rendered


def test_call_graph_resolves_every_perf_target(src_project):
    # Meta-contract: the graph must cover the benchmarks/perf surface —
    # every registered benchmark function and its nested work() closure
    # resolve to graph nodes, and each work() has resolved callees.
    from repro.obs.prof.bench import registered_benchmarks

    graph = src_project.graph
    specs = registered_benchmarks()
    assert len(specs) >= 5
    for spec in specs:
        qname = f"repro.obs.prof.targets.{spec.setup.__name__}"
        assert qname in graph.functions, qname
        work = f"{qname}.work"
        assert work in graph.functions, work
        assert graph.callees(work), f"{work} resolved no callees"


def test_src_tree_has_no_semantic_errors(src_project):
    # Empty-baseline discipline extends to the semantic passes: no live
    # DET001/MUT001/PAR001 anywhere in src (VEC001 notes are expected).
    from repro.lint.rules.semantic import (
        CacheMutationRule,
        DeterminismRule,
        PicklabilityRule,
    )

    for rule in (DeterminismRule(), CacheMutationRule(), PicklabilityRule()):
        findings = rule.check(src_project)
        rendered = "\n".join(
            f"{f.path}:{f.line} {f.message}" for f in findings)
        assert not findings, f"{rule.id} findings in src/:\n{rendered}"


# -- fact cache ------------------------------------------------------------


class TestFactCache:
    def _contexts(self, tmp_path, body):
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent(body))
        with open(path, "r", encoding="utf-8") as fh:
            return [FileContext.from_source(str(path), fh.read())]

    def test_warm_runs_replay_summaries(self, tmp_path):
        cache_path = str(tmp_path / "facts.json")
        body = """\
            def f():
                return 1
            """
        first = build_project(self._contexts(tmp_path, body),
                              fact_cache_path=cache_path)
        assert first.graph.functions  # force the analysis
        first.save_cache()
        assert os.path.isfile(cache_path)

        second = build_project(self._contexts(tmp_path, body),
                               fact_cache_path=cache_path)
        assert second.graph.functions
        assert second._cache.hits == 1
        assert second._cache.misses == 0

    def test_edits_invalidate_by_content_hash(self, tmp_path):
        cache_path = str(tmp_path / "facts.json")
        project = build_project(
            self._contexts(tmp_path, "def f():\n    return 1\n"),
            fact_cache_path=cache_path)
        assert any(q.endswith(".f") for q in project.graph.functions)
        project.save_cache()

        edited = build_project(
            self._contexts(tmp_path, "def g():\n    return 2\n"),
            fact_cache_path=cache_path)
        assert edited._cache.hits == 0
        assert any(q.endswith(".g") for q in edited.graph.functions)
        assert not any(q.endswith(".f") for q in edited.graph.functions)

    def test_extractor_version_mismatch_drops_cache(self, tmp_path):
        cache_path = tmp_path / "facts.json"
        source = "def f():\n    return 1\n"
        cache = FactCache(str(cache_path))
        cache.put("mod.py", source_hash(source),
                  extract_summary("mod.py", __import__("ast").parse(source)))
        cache.save()
        doc = json.loads(cache_path.read_text())
        doc["extractor"] = -1
        cache_path.write_text(json.dumps(doc))
        stale = FactCache(str(cache_path))
        assert stale.get("mod.py", source_hash(source)) is None


# -- SARIF -----------------------------------------------------------------


SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "level", "message",
                                         "locations"],
                            "properties": {
                                "level": {"enum": ["none", "note",
                                                   "warning", "error"]},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation",
                                                    "region"],
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "required": [
                                                            "startLine"],
                                                        "properties": {
                                                            "startLine": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarif:
    def test_round_trip_validates_against_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        result = lint_tree(tmp_path, {
            **HOT_INIT,
            "repro/simulator/cache.py": """\
                import numpy as np

                def walk(n):
                    total = 0
                    for a in np.arange(n):
                        total += int(a)
                    return total
                """,
            "fan.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def run(data):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(lambda x: x, data))
                """,
        })
        doc = sarif_document(result)
        jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)
        # And through json round-trip (what --format sarif writes).
        doc = json.loads(json.dumps(doc))
        levels = {r["ruleId"]: r["level"] for r in doc["runs"][0]["results"]}
        assert levels == {"PAR001": "error", "VEC001": "note"}
        cols = [r["locations"][0]["physicalLocation"]["region"]["startColumn"]
                for r in doc["runs"][0]["results"]]
        assert all(c >= 1 for c in cols)

    def test_cli_emits_sarif(self, tmp_path):
        (tmp_path / "clean.py").write_text('"""Clean."""\nX = 1\n')
        proc = subprocess.run(
            ["python", "-m", "repro.lint.cli", str(tmp_path),
             "--format", "sarif", "--no-fact-cache", "--no-baseline"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"] == []


# -- incremental (--changed) mode ------------------------------------------


def _git(args, cwd):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t"] + args,
        cwd=cwd, check=True, capture_output=True, text=True)


class TestChangedMode:
    def _seed_repo(self, tmp_path):
        (tmp_path / "helpers.py").write_text(textwrap.dedent("""\
            def compute(x):
                return x * 2
            """))
        (tmp_path / "runner.py").write_text(textwrap.dedent("""\
            import helpers

            class SimulationRunner:
                def metric(self, points, name):
                    return [helpers.compute(p) for p in points]
            """))
        _git(["init", "-q"], tmp_path)
        _git(["add", "-A"], tmp_path)
        _git(["commit", "-q", "-m", "seed"], tmp_path)

    def test_lints_only_changed_files_with_whole_program_facts(
            self, tmp_path, monkeypatch):
        self._seed_repo(tmp_path)
        # Regression enters through the *changed* helper; the root
        # (metric) lives in an unchanged file whose facts must come from
        # the project graph for DET001 to connect the chain.
        (tmp_path / "helpers.py").write_text(textwrap.dedent("""\
            import time

            def compute(x):
                return x * 2 + time.time()
            """))
        monkeypatch.chdir(tmp_path)
        result = LintRunner(select=SEMANTIC_RULES).run(
            [str(tmp_path)], changed_ref="HEAD")
        assert result.files_checked == 1
        assert rule_ids(result) == ["DET001"]
        assert "SimulationRunner.metric" in result.findings[0].message

    def test_no_changes_means_nothing_linted(self, tmp_path, monkeypatch):
        self._seed_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        result = LintRunner(select=SEMANTIC_RULES).run(
            [str(tmp_path)], changed_ref="HEAD")
        assert result.files_checked == 0
        assert result.findings == []

    def test_unknown_ref_fails_loudly(self, tmp_path, monkeypatch):
        from repro.lint.incremental import ChangedFilesError

        self._seed_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        with pytest.raises(ChangedFilesError):
            LintRunner(select=SEMANTIC_RULES).run(
                [str(tmp_path)], changed_ref="no-such-ref")


# -- plumbing --------------------------------------------------------------


def test_module_name_walks_init_chains(tmp_path):
    pkg = tmp_path / "alpha" / "beta"
    pkg.mkdir(parents=True)
    (tmp_path / "alpha" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("")
    assert module_name_for_path(str(pkg / "mod.py")) == "alpha.beta.mod"
    assert module_name_for_path(str(pkg / "__init__.py")) == "alpha.beta"
    (tmp_path / "script.py").write_text("")
    assert module_name_for_path(str(tmp_path / "script.py")) == "script"


def test_semantic_rules_are_registered():
    from repro.lint.core import RULES, ProjectRule

    for rule_id in SEMANTIC_RULES:
        assert rule_id in RULES
        assert issubclass(RULES[rule_id], ProjectRule)
    assert RULES["VEC001"].severity == "note"
