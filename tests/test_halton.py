"""Tests for the Halton low-discrepancy sequence."""

import numpy as np
import pytest

from repro.sampling.discrepancy import centered_l2_discrepancy
from repro.sampling.halton import halton


class TestHalton:
    def test_shape_and_bounds(self):
        pts = halton(50, 9)
        assert pts.shape == (50, 9)
        assert pts.min() >= 0.0 and pts.max() < 1.0

    def test_unscrambled_base2_prefix(self):
        # With skip=0 the base-2 dimension starts 1/2, 1/4, 3/4, ...
        pts = halton(4, 1, scramble=False, skip=0)
        np.testing.assert_allclose(pts[:, 0], [0.5, 0.25, 0.75, 0.125])

    def test_deterministic(self):
        a = halton(20, 5, seed=3)
        b = halton(20, 5, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_scramble_seeds_differ(self):
        a = halton(20, 5, seed=3)
        b = halton(20, 5, seed=4)
        assert not np.array_equal(a, b)

    def test_scrambled_beats_random_discrepancy(self):
        rng = np.random.default_rng(0)
        h = centered_l2_discrepancy(halton(64, 5, scramble=True, seed=1))
        r = np.mean([
            centered_l2_discrepancy(rng.random((64, 5))) for _ in range(5)
        ])
        assert h < r

    def test_low_dims_well_distributed(self):
        # In each 1-D projection, points fill [0,1) nearly uniformly.
        pts = halton(128, 3, scramble=True, seed=2)
        for k in range(3):
            hist, _ = np.histogram(pts[:, k], bins=8, range=(0, 1))
            assert hist.min() >= 8  # perfectly uniform would be 16

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            halton(0, 3)
        with pytest.raises(ValueError):
            halton(10, 0)
        with pytest.raises(ValueError):
            halton(10, 26)
