"""Tests for Plackett-Burman designs (the screening-design baseline)."""

import numpy as np
import pytest

from repro.sampling.plackett_burman import foldover, pb_to_unit, plackett_burman


@pytest.mark.parametrize("factors", [3, 7, 9, 11, 15, 19, 23])
def test_design_shape(factors):
    d = plackett_burman(factors)
    runs, cols = d.shape
    assert cols == factors
    assert runs % 4 == 0
    assert runs > factors


@pytest.mark.parametrize("factors", [3, 7, 9, 11, 19, 23])
def test_columns_orthogonal(factors):
    d = plackett_burman(factors).astype(float)
    gram = d.T @ d
    off_diag = gram - np.diag(np.diag(gram))
    # Plackett-Burman columns are mutually orthogonal.
    np.testing.assert_allclose(off_diag, 0.0, atol=1e-9)


def test_entries_are_plus_minus_one():
    d = plackett_burman(9)
    assert set(np.unique(d)) <= {-1, 1}


def test_nine_factors_uses_twelve_runs():
    # The classic PB12 construction covers up to 11 factors — the paper's
    # 9-parameter space screens in 12 runs.
    assert plackett_burman(9).shape[0] == 12


def test_foldover_doubles_runs_and_negates():
    d = plackett_burman(9)
    f = foldover(d)
    assert f.shape == (2 * d.shape[0], d.shape[1])
    np.testing.assert_array_equal(f[d.shape[0]:], -d)


def test_foldover_balances_every_column():
    f = foldover(plackett_burman(9))
    np.testing.assert_array_equal(f.sum(axis=0), np.zeros(9))


def test_pb_to_unit_maps_to_cube_corners():
    u = pb_to_unit(plackett_burman(5))
    assert set(np.unique(u)) <= {0.0, 1.0}


def test_invalid_factor_count():
    with pytest.raises(ValueError):
        plackett_burman(0)
