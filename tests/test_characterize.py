"""Tests for workload characterisation."""

import pytest

from repro.simulator.trace import empty_trace
from repro.workloads.characterize import characterize, compare
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import PROFILES


@pytest.fixture(scope="module")
def chars():
    return {
        name: characterize(generate_trace(PROFILES[name], 10000, seed=6))
        for name in ("mcf", "crafty", "vortex", "equake")
    }


class TestCharacterize:
    def test_mix_sums_to_one(self, chars):
        for c in chars.values():
            assert sum(c.mix.values()) == pytest.approx(1.0)

    def test_memory_fraction_matches_profiles(self, chars):
        for name, c in chars.items():
            profile = PROFILES[name]
            expected = profile.load_frac + profile.store_frac
            assert c.memory_fraction() == pytest.approx(expected, rel=0.35), name

    def test_code_footprint_tracks_profile(self, chars):
        assert chars["vortex"].code_footprint_kb > chars["mcf"].code_footprint_kb

    def test_dep_distances_positive(self, chars):
        for c in chars.values():
            assert c.mean_dep_distance > 0
            assert c.dep_distance_p90 >= c.mean_dep_distance

    def test_working_set_grows_with_window(self, chars):
        for c in chars.values():
            sizes = [c.working_set_lines[w] for w in sorted(c.working_set_lines)]
            assert all(a <= b + 1e-9 for a, b in zip(sizes, sizes[1:]))

    def test_branch_entropy_orders_predictability(self, chars):
        # crafty (noisy branches) must have higher outcome entropy than
        # equake (highly biased).
        assert chars["crafty"].branch_entropy_bits > chars["equake"].branch_entropy_bits

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            characterize(empty_trace())


class TestCompare:
    def test_self_comparison_is_zero(self, chars):
        diffs = compare(chars["mcf"], chars["mcf"])
        assert all(v == pytest.approx(0.0) for v in diffs.values())

    def test_different_programs_differ(self, chars):
        diffs = compare(chars["mcf"], chars["crafty"])
        assert max(diffs.values()) > 0.1

    def test_keys(self, chars):
        diffs = compare(chars["mcf"], chars["vortex"])
        assert "memory_fraction" in diffs and "branch_entropy_bits" in diffs
