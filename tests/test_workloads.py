"""Tests for workload profiles, trace generation and the registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import isa
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import PROFILES, WorkloadProfile
from repro.workloads.spec2000 import (
    DEFAULT_TRACE_LENGTH,
    benchmark_names,
    get_profile,
    get_trace,
    spec_label,
)


class TestProfiles:
    def test_all_eight_benchmarks_present(self):
        assert set(benchmark_names()) == set(PROFILES)
        assert len(PROFILES) == 8

    def test_profiles_validate(self):
        for profile in PROFILES.values():
            assert profile.code_footprint_kb > 0

    def test_mix_fractions_must_sum_below_one(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", load_frac=0.6, store_frac=0.5)

    def test_stream_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", stack_w=0.5, hot_w=0.5, stream_w=0.5, chase_w=0.5)

    def test_bias_range(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", branch_bias=0.3)

    def test_distinct_characters(self):
        # The profiles must differ where the paper's programs differ.
        mcf, vortex, equake = PROFILES["mcf"], PROFILES["vortex"], PROFILES["equake"]
        assert mcf.chase_w > vortex.chase_w  # mcf is pointer-chasing
        assert vortex.code_footprint_kb > mcf.code_footprint_kb  # vortex big code
        assert equake.fpalu_frac > 0 and mcf.fpalu_frac == 0
        assert equake.branch_bias > PROFILES["crafty"].branch_bias


class TestGeneration:
    def test_requested_length(self):
        trace = generate_trace(PROFILES["mcf"], 5000, seed=1)
        assert len(trace) == 5000

    def test_traces_validate(self):
        for name in benchmark_names():
            generate_trace(PROFILES[name], 3000, seed=2).validate()

    def test_deterministic(self):
        a = generate_trace(PROFILES["twolf"], 2000, seed=9)
        b = generate_trace(PROFILES["twolf"], 2000, seed=9)
        np.testing.assert_array_equal(a.op, b.op)
        np.testing.assert_array_equal(a.addr, b.addr)

    def test_seeds_differ(self):
        a = generate_trace(PROFILES["twolf"], 2000, seed=9)
        b = generate_trace(PROFILES["twolf"], 2000, seed=10)
        assert not np.array_equal(a.addr, b.addr)

    def test_benchmarks_decorrelated_under_same_seed(self):
        a = generate_trace(PROFILES["mcf"], 2000, seed=0)
        b = generate_trace(PROFILES["twolf"], 2000, seed=0)
        assert not np.array_equal(a.op, b.op)

    def test_mix_close_to_profile(self):
        # Op classes are assigned to *static* slots; the dynamic mix then
        # depends on which blocks are hot, so tolerances are loose.
        profile = PROFILES["mcf"]
        trace = generate_trace(profile, 20000, seed=3)
        mix = trace.mix()
        assert mix["load"] == pytest.approx(profile.load_frac, rel=0.3)
        assert mix["store"] == pytest.approx(profile.store_frac, rel=0.45)
        control = mix["branch"] + mix["jump"]
        assert control == pytest.approx(1.0 / profile.mean_block_len, rel=0.35)

    def test_fp_mix_present_for_fp_benchmarks(self):
        mix = generate_trace(PROFILES["equake"], 10000, seed=1).mix()
        assert mix["fpalu"] > 0.1

    def test_code_footprint_respected(self):
        profile = PROFILES["vortex"]
        trace = generate_trace(profile, 20000, seed=4)
        span_kb = (trace.pc.max() - trace.pc.min()) / 1024.0
        assert span_kb == pytest.approx(profile.code_footprint_kb, rel=0.4)

    def test_branch_outcomes_biased(self):
        profile = PROFILES["equake"]  # highly predictable
        trace = generate_trace(profile, 20000, seed=5)
        branch_mask = trace.op == isa.BRANCH
        # Group outcomes by site: dominant-direction fraction should be
        # close to the profile bias.
        pcs = trace.pc[branch_mask]
        taken = trace.taken[branch_mask]
        fractions = []
        for pc in np.unique(pcs)[:50]:
            outcomes = taken[pcs == pc]
            if len(outcomes) >= 10:
                fractions.append(max(outcomes.mean(), 1 - outcomes.mean()))
        assert np.mean(fractions) > 0.9

    def test_zero_length(self):
        trace = generate_trace(PROFILES["mcf"], 0, seed=0)
        assert len(trace) == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(PROFILES["mcf"], -1, seed=0)

    @settings(max_examples=10, deadline=None)
    @given(
        length=st.integers(1, 3000),
        seed=st.integers(0, 50),
        name=st.sampled_from(benchmark_names()),
    )
    def test_any_length_and_seed_yields_valid_trace(self, length, seed, name):
        trace = generate_trace(PROFILES[name], length, seed)
        trace.validate()
        assert len(trace) == length


class TestRegistry:
    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("linpack")

    def test_extra_profiles_available(self):
        from repro.workloads.spec2000 import all_benchmark_names, extra_benchmark_names

        extras = extra_benchmark_names()
        assert {"gzip", "gcc", "bzip2", "art"} <= set(extras)
        assert set(all_benchmark_names()) == set(benchmark_names()) | set(extras)
        for name in extras:
            profile = get_profile(name)
            generate_trace(profile, 1500, seed=1).validate()

    def test_get_trace_memoised(self):
        a = get_trace("mcf", 1000, seed=0)
        b = get_trace("mcf", 1000, seed=0)
        assert a is b

    def test_spec_labels(self):
        assert spec_label("mcf") == "181.mcf"
        assert spec_label("unknown") == "unknown"

    def test_default_length(self):
        assert DEFAULT_TRACE_LENGTH >= 16384
