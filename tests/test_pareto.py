"""Tests for Pareto-front utilities."""

import numpy as np
import pytest

from repro.analysis.pareto import ParetoPoint, model_pareto, pareto_front, scalarize
from repro.core.design_space import DesignSpace, Parameter
from repro.models.base import Model


class TestParetoFront:
    def test_simple_2d(self):
        values = np.array([
            [1.0, 5.0],  # front
            [2.0, 4.0],  # front
            [3.0, 3.0],  # front
            [3.0, 5.0],  # dominated by (1,5)? no: 3>1, 5=5 -> dominated
            [4.0, 4.0],  # dominated by (2,4)
        ])
        front = pareto_front(values)
        assert list(front) == [0, 1, 2]

    def test_single_point(self):
        assert list(pareto_front(np.array([[1.0, 2.0]]))) == [0]

    def test_identical_points_all_kept(self):
        values = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert len(pareto_front(values)) == 2

    def test_sorted_by_first_metric(self):
        values = np.array([[3.0, 1.0], [1.0, 3.0], [2.0, 2.0]])
        front = pareto_front(values)
        firsts = values[front, 0]
        assert list(firsts) == sorted(firsts)

    def test_one_dimensional(self):
        values = np.array([[3.0], [1.0], [2.0]])
        assert list(pareto_front(values)) == [1]


class _Linear(Model):
    def __init__(self, direction):
        self.direction = direction
        self.dimension = 2

    def predict(self, pts):
        pts = np.atleast_2d(pts)
        return pts @ np.asarray(self.direction)


@pytest.fixture
def space():
    return DesignSpace(
        [Parameter("a", 0, 1, None), Parameter("b", 0, 1, None)],
        name="pareto",
    )


class TestModelPareto:
    def test_conflicting_objectives_produce_a_front(self, space):
        models = {"x": _Linear([1.0, 0.0]), "y": _Linear([-1.0, 0.0])}
        front = model_pareto(models, space, candidates=256, seed=1)
        # Objectives are exact opposites: every point is non-dominated
        # only along the trade-off; the front must span both extremes.
        xs = [p.metrics["x"] for p in front]
        assert min(xs) < 0.1 and max(xs) > 0.9

    def test_aligned_objectives_collapse_front(self, space):
        models = {"x": _Linear([1.0, 1.0]), "y": _Linear([1.0, 1.0])}
        front = model_pareto(models, space, candidates=256, seed=1)
        assert len(front) == 1  # one best point dominates

    def test_front_points_carry_physical_values(self, space):
        models = {"x": _Linear([1.0, 0.0]), "y": _Linear([0.0, 1.0])}
        front = model_pareto(models, space, candidates=128, seed=2)
        for p in front:
            assert set(p.point) == {"a", "b"}

    def test_empty_models_rejected(self, space):
        with pytest.raises(ValueError):
            model_pareto({}, space)


class TestScalarize:
    def test_weighted_pick(self):
        front = [
            ParetoPoint({"a": 0}, {"cpi": 1.0, "power": 10.0}),
            ParetoPoint({"a": 1}, {"cpi": 2.0, "power": 2.0}),
        ]
        # Weighting CPI heavily picks the low-CPI point...
        assert scalarize(front, {"cpi": 3, "power": 1}).metrics["cpi"] == 1.0
        # ...weighting power heavily picks the low-power point.
        assert scalarize(front, {"cpi": 1, "power": 3}).metrics["power"] == 2.0

    def test_empty_front_rejected(self):
        with pytest.raises(ValueError):
            scalarize([], {"cpi": 1})
