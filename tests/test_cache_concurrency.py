"""Cache-lifecycle and concurrency tests for the simulation runner.

Covers the correctness contracts behind the parallel experiment grid:
``REPRO_CACHE_DIR`` resolved at construction (not import) time, corrupt
cache recovery, mutation-safety of returned summaries, dirty-gated
flushes, merge-on-flush between concurrent runners, and bitwise equality
of the serial and parallel ``metric`` paths.
"""

import json
import multiprocessing

import numpy as np
import pytest

from repro.core.design_space import paper_design_space
from repro.experiments.runner import SimulationRunner, resolve_jobs

TRACE_LENGTH = 2000


def point(**overrides):
    base = {
        "pipe_depth": 12, "rob_size": 64, "iq_frac": 0.5, "lsq_frac": 0.5,
        "l2_size_kb": 1024, "l2_lat": 12, "il1_size_kb": 32,
        "dl1_size_kb": 32, "dl1_lat": 2,
    }
    base.update(overrides)
    return base


def make_runner(cache_dir, **kwargs):
    kwargs.setdefault("trace_length", TRACE_LENGTH)
    return SimulationRunner("mcf", cache_dir=cache_dir, **kwargs)


class TestCacheDirResolution:
    def test_env_var_honoured_after_import(self, tmp_path, monkeypatch):
        # The bug fixed here: a default of ``default_cache_dir()`` froze
        # the directory at *import* time, ignoring later env changes.
        monkeypatch.chdir(tmp_path)
        late = tmp_path / "set-after-import"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(late))
        runner = SimulationRunner("mcf", trace_length=TRACE_LENGTH)
        assert runner._cache_path.parent == late

    def test_default_is_cwd_cache(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        runner = SimulationRunner("mcf", trace_length=TRACE_LENGTH)
        assert runner._cache_path.resolve().parent == tmp_path.resolve() / ".repro_cache"

    def test_none_still_disables_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = SimulationRunner("mcf", trace_length=TRACE_LENGTH,
                                  cache_dir=None)
        assert runner._cache_path is None


class TestJobsResolution:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(2) == 2
        assert resolve_jobs() == 7

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_invalid_values_fail_loudly(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_runner_reads_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert make_runner(tmp_path).jobs == 3


class TestMutationSafety:
    def test_fresh_result_is_a_copy(self, tmp_path):
        runner = make_runner(tmp_path)
        summary = runner.result_at(point())
        summary["cpi"] = -1.0
        assert runner.result_at(point())["cpi"] > 0

    def test_cached_result_is_a_copy(self, tmp_path):
        runner = make_runner(tmp_path)
        runner.result_at(point())
        cached = runner.result_at(point())
        cached.clear()
        again = runner.result_at(point())
        assert again["cpi"] > 0 and "power" in again

    def test_mutation_never_reaches_disk(self, tmp_path):
        runner = make_runner(tmp_path)
        runner.cpi(paper_design_space().as_array(point()))
        runner.result_at(point())["cpi"] = -1.0
        runner._dirty = 1  # force a rewrite from the in-memory cache
        runner._flush()
        payload = json.loads(runner._cache_path.read_text())
        assert all(entry["cpi"] > 0 for entry in payload.values())


class TestFlushDiscipline:
    def test_corrupt_cache_recovered_and_rewritten(self, tmp_path):
        probe = make_runner(tmp_path)
        probe._cache_path.write_text('{"half a json')
        runner = make_runner(tmp_path)
        assert runner._cache == {}
        runner.cpi(paper_design_space().as_array(point()))
        payload = json.loads(runner._cache_path.read_text())
        assert len(payload) == 1

    def test_clean_runner_never_rewrites(self, tmp_path):
        space = paper_design_space()
        make_runner(tmp_path).cpi(space.as_array(point()))
        warm = make_runner(tmp_path)
        warm._cache_path.unlink()  # any write would recreate it
        warm.cpi(space.as_array(point()))
        assert warm.cache_hits == 1 and warm.simulations_run == 0
        assert not warm._cache_path.exists()

    def test_no_stale_tmp_files_left(self, tmp_path):
        runner = make_runner(tmp_path)
        runner.cpi(paper_design_space().as_array(point()))
        assert not list(tmp_path.glob("*.tmp"))

    def test_interleaved_runners_union_on_flush(self, tmp_path):
        # Two runners over the same cache file, flushing one after the
        # other: the second flush must not drop the first runner's entry.
        space = paper_design_space()
        a, b = make_runner(tmp_path), make_runner(tmp_path)
        a.result_at(point(l2_lat=12))
        b.result_at(point(l2_lat=18))
        a._flush()
        b._flush()
        merged = make_runner(tmp_path)
        assert len(merged._cache) == 2
        assert merged.cpi(np.vstack([
            space.as_array(point(l2_lat=12)), space.as_array(point(l2_lat=18)),
        ])).shape == (2,)
        assert merged.simulations_run == 0


def _simulate_and_flush(args):
    """Child-process worker: simulate one point and flush the shared cache."""
    cache_dir, l2_lat, barrier = args
    runner = SimulationRunner("mcf", trace_length=TRACE_LENGTH,
                              cache_dir=cache_dir)
    runner.result_at(point(l2_lat=l2_lat))
    if barrier is not None:
        barrier.wait(timeout=60)  # line up the racy flushes
    runner._flush()
    return runner.simulations_run


class TestTwoProcessMerge:
    def test_concurrent_flushes_lose_nothing(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)  # shared by inheritance, not pickling
        procs = [
            ctx.Process(target=_simulate_and_flush,
                        args=((tmp_path, l2_lat, barrier),))
            for l2_lat in (12, 18)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
        assert all(proc.exitcode == 0 for proc in procs)
        merged = make_runner(tmp_path)
        assert len(merged._cache) == 2  # neither process dropped the other


class TestParallelMetric:
    def grid(self):
        space = paper_design_space()
        return np.vstack([
            space.as_array(point(l2_lat=lat, rob_size=rob))
            for lat in (12, 18) for rob in (48, 96)
        ] + [space.as_array(point(l2_lat=12, rob_size=48))])  # duplicate row

    def test_parallel_matches_serial_bitwise(self, tmp_path):
        serial = make_runner(tmp_path / "serial", jobs=1)
        parallel = make_runner(tmp_path / "parallel", jobs=2)
        expected = serial.cpi(self.grid())
        got = parallel.cpi(self.grid())
        assert np.array_equal(expected, got)  # exact, not approximate
        assert parallel.jobs == 2

    def test_parallel_stats_match_serial(self, tmp_path):
        serial = make_runner(tmp_path / "serial", jobs=1)
        parallel = make_runner(tmp_path / "parallel", jobs=2)
        serial.cpi(self.grid())
        parallel.cpi(self.grid())
        assert parallel.simulations_run == serial.simulations_run == 4
        assert parallel.cache_hits == serial.cache_hits == 1
        assert parallel.stats()["wall_time_s"] > 0

    def test_parallel_fills_the_shared_cache(self, tmp_path):
        make_runner(tmp_path, jobs=2).cpi(self.grid())
        rerun = make_runner(tmp_path, jobs=2)
        rerun.cpi(self.grid())
        assert rerun.simulations_run == 0
        assert rerun.cache_hits == 5

    def test_jobs_capped_by_task_count(self, tmp_path):
        # More workers than uncached points must not deadlock or error.
        space = paper_design_space()
        runner = make_runner(tmp_path, jobs=8)
        values = runner.cpi(np.vstack([
            space.as_array(point(l2_lat=12)), space.as_array(point(l2_lat=18)),
        ]))
        assert values.shape == (2,) and (values > 0).all()
