"""Tests for the analysis layer: splits, trends, effects, optimisation."""

import numpy as np
import pytest

from repro.analysis.effects import main_effects, rank_parameters
from repro.analysis.optimize import optimize_design
from repro.analysis.splits import significant_splits, split_value_distribution
from repro.analysis.trends import interaction_grid
from repro.core.design_space import DesignSpace, Parameter
from repro.models.base import Model
from repro.models.tree import RegressionTree


@pytest.fixture
def space():
    return DesignSpace(
        [
            Parameter("lat", 5, 20, None, "linear"),
            Parameter("size_kb", 256, 8192, 6, "log", integer=True),
            Parameter("frac", 0.25, 0.75, None, "linear", fraction_of="lat"),
        ],
        name="analysis",
    )


class FakeModel(Model):
    """Analytical model: response = 1 + 2*u0 + u1^2 (u2 irrelevant)."""

    dimension = 3

    def predict(self, points):
        points = np.atleast_2d(points)
        return 1.0 + 2.0 * points[:, 0] + points[:, 1] ** 2


class TestSplits:
    def _tree(self, rng):
        x = rng.random((60, 3))
        y = 3.0 * (x[:, 0] > 0.5) + x[:, 1]
        return RegressionTree(x, y, p_min=5)

    def test_first_split_is_dominant_parameter(self, space, rng):
        splits = significant_splits(self._tree(rng), space, count=5)
        assert splits[0].parameter == "lat"
        assert splits[0].rank == 1
        assert splits[0].depth == 1

    def test_values_in_physical_units(self, space, rng):
        splits = significant_splits(self._tree(rng), space)
        lat_splits = [s for s in splits if s.parameter == "lat"]
        assert all(5 <= s.value <= 20 for s in lat_splits)

    def test_log_parameter_decoded_off_grid(self, space, rng):
        x = rng.random((60, 3))
        y = (x[:, 1] > 0.45).astype(float) * 2.0
        tree = RegressionTree(x, y, p_min=10)
        splits = significant_splits(tree, space)
        size_split = next(s for s in splits if s.parameter == "size_kb")
        assert 256 < size_split.value < 8192
        # Off-grid: not snapped onto {256, 512, ...}.
        assert size_split.value not in (256, 512, 1024, 2048, 4096, 8192)

    def test_fraction_label(self, space, rng):
        x = rng.random((40, 3))
        y = (x[:, 2] > 0.5).astype(float)
        tree = RegressionTree(x, y, p_min=10)
        splits = significant_splits(tree, space)
        frac_split = next(s for s in splits if s.parameter == "frac")
        assert frac_split.value_label().endswith("*")

    def test_distribution_covers_all_parameters(self, space, rng):
        dist = split_value_distribution(self._tree(rng), space)
        assert set(dist) == {"lat", "size_kb", "frac"}
        assert len(dist["lat"]) >= 1


class TestTrends:
    def test_grid_shape_and_values(self, space):
        model = FakeModel()

        def response(points):
            return model.predict(space.encode(points))

        base = {"lat": 10, "size_kb": 1024, "frac": 0.5}
        grid = interaction_grid(
            space, response, base,
            param_x="lat", x_values=[5, 10, 20],
            param_y="size_kb", y_values=[256, 8192],
            model=model,
        )
        assert grid.simulated.shape == (2, 3)
        assert grid.predicted.shape == (2, 3)
        # Model == response here, so agreement is perfect.
        assert grid.monotonic_agreement() == 1.0
        assert grid.max_trend_error() < 1e-9

    def test_rows_iteration(self, space):
        def response(points):
            return np.ones(len(np.atleast_2d(points)))

        base = {"lat": 10, "size_kb": 1024, "frac": 0.5}
        grid = interaction_grid(space, response, base, "lat", [5, 10],
                                "size_kb", [256])
        rows = list(grid.rows())
        assert len(rows) == 2
        assert rows[0][2] == 1.0

    def test_errors_without_predictions(self, space):
        def response(points):
            return np.ones(len(np.atleast_2d(points)))

        grid = interaction_grid(space, response,
                                {"lat": 10, "size_kb": 1024, "frac": 0.5},
                                "lat", [5, 10], "size_kb", [256])
        with pytest.raises(ValueError):
            grid.max_trend_error()


class TestEffects:
    def test_irrelevant_parameter_has_smallest_effect(self, space):
        effects = main_effects(FakeModel(), space, num_levels=5, background=128)
        assert effects["frac"].magnitude < effects["lat"].magnitude
        assert effects["frac"].magnitude < effects["size_kb"].magnitude

    def test_ranking_order(self, space):
        ranked = rank_parameters(FakeModel(), space, num_levels=5, background=128)
        assert ranked[0].parameter == "lat"  # slope 2 beats quadratic's 1
        assert ranked[-1].parameter == "frac"

    def test_physical_levels(self, space):
        effects = main_effects(FakeModel(), space, num_levels=3, background=32)
        levels = effects["lat"].physical_levels(space)
        assert levels[0] == pytest.approx(5)
        assert levels[-1] == pytest.approx(20)

    def test_invalid_levels(self, space):
        with pytest.raises(ValueError):
            main_effects(FakeModel(), space, num_levels=1)


class TestOptimize:
    def test_finds_minimum_corner(self, space):
        results = optimize_design(FakeModel(), space, minimize=True,
                                  candidates=512, refine_top=4, seed=1)
        best = results[0]
        # Minimum at u0 = u1 = 0 -> lat = 5, size = 256.
        assert best.point["lat"] < 7
        assert best.point["size_kb"] <= 512
        assert best.predicted < 1.3

    def test_maximize(self, space):
        results = optimize_design(FakeModel(), space, minimize=False,
                                  candidates=512, refine_top=4, seed=1)
        assert results[0].point["lat"] > 17

    def test_constraint_respected(self, space):
        def constraint(point):
            return point["size_kb"] <= 1024

        results = optimize_design(FakeModel(), space, minimize=False,
                                  candidates=512, refine_top=4, seed=1,
                                  constraint=constraint)
        assert all(r.point["size_kb"] <= 1024 for r in results)

    def test_impossible_constraint(self, space):
        with pytest.raises(ValueError):
            optimize_design(FakeModel(), space, candidates=16,
                            constraint=lambda p: False)

    def test_results_sorted(self, space):
        results = optimize_design(FakeModel(), space, candidates=256, seed=2)
        values = [r.predicted for r in results]
        assert values == sorted(values)
