"""Timing-semantics tests for the out-of-order core.

These tests drive the engine with small hand-constructed traces and check
the cycle-level behaviour of each mechanism: width limits, dependence
chains, window occupancy, misprediction penalties, store forwarding.
"""

import numpy as np
import pytest

from repro.simulator import isa
from repro.simulator.config import ProcessorConfig
from repro.simulator.ooo_core import OutOfOrderCore
from repro.simulator.trace import Trace


def build_trace(rows, name="hand", loop_pc_bytes=None):
    """rows: list of (op, src1, src2, addr, taken); PCs are sequential.

    ``loop_pc_bytes`` wraps the PC stream within that many bytes (e.g. 64
    keeps all fetches in one icache line), isolating core timing from cold
    instruction-cache misses.
    """
    n = len(rows)
    pcs = np.arange(n, dtype=np.int64) * 4
    if loop_pc_bytes is not None:
        pcs = pcs % loop_pc_bytes
    return Trace(
        op=np.array([r[0] for r in rows], dtype=np.int8),
        src1=np.array([r[1] for r in rows], dtype=np.int32),
        src2=np.array([r[2] for r in rows], dtype=np.int32),
        addr=np.array([r[3] for r in rows], dtype=np.int64),
        pc=pcs + 0x400000,
        taken=np.array([r[4] for r in rows]),
        name=name,
    )


def alu_rows(n, dep=0):
    return [(isa.IALU, dep if i >= dep else 0, 0, 0, False) for i in range(n)]


def run(trace, warmup=0, **cfg):
    core = OutOfOrderCore(ProcessorConfig(**cfg))
    result = core.run(trace, collect_timeline=True, warmup=warmup)
    return core, result


class TestBasics:
    def test_empty_trace(self):
        core = OutOfOrderCore(ProcessorConfig())
        result = core.run(Trace(*[np.zeros(0, dtype=d) for d in
                                  (np.int8, np.int32, np.int32, np.int64, np.int64, bool)]))
        assert result.instructions == 0
        assert result.cpi == 0.0

    def test_independent_alus_reach_width_limit(self):
        # 400 independent single-cycle ops on a 4-wide machine: CPI -> 0.25.
        _, result = run(build_trace(alu_rows(400), loop_pc_bytes=64), warmup=100)
        assert result.cpi == pytest.approx(0.25, rel=0.2)

    def test_cpi_never_beats_commit_width(self):
        _, result = run(build_trace(alu_rows(400), loop_pc_bytes=64))
        assert result.cpi >= 1.0 / 4 - 1e-9

    def test_serial_chain_is_one_per_cycle(self):
        # Every op depends on the previous one: CPI -> 1.
        _, result = run(build_trace(alu_rows(300, dep=1), loop_pc_bytes=64),
                        warmup=50)
        assert result.cpi == pytest.approx(1.0, rel=0.1)

    def test_determinism(self, tiny_trace, default_config):
        a = OutOfOrderCore(default_config).run(tiny_trace)
        b = OutOfOrderCore(default_config).run(tiny_trace)
        assert a.cpi == b.cpi
        assert a.as_dict() == b.as_dict()

    def test_timeline_collected(self):
        core, _ = run(build_trace(alu_rows(10)))
        tl = core.timeline
        assert tl is not None
        assert len(tl.commit) == 10
        # Timestamps are ordered per instruction.
        for i in range(10):
            assert tl.fetch[i] <= tl.dispatch[i] < tl.issue[i] + 1
            assert tl.issue[i] < tl.complete[i] <= tl.commit[i]

    def test_commit_in_order(self):
        core, _ = run(build_trace(alu_rows(50, dep=1)))
        commits = core.timeline.commit
        assert all(a <= b for a, b in zip(commits, commits[1:]))


class TestWindowLimits:
    def test_small_rob_hurts_memory_parallelism(self, tiny_trace):
        big = run(tiny_trace, rob_size=128, iq_size=64, lsq_size=64)[1]
        small = run(tiny_trace, rob_size=24, iq_size=12, lsq_size=12)[1]
        assert small.cpi > big.cpi

    def test_rob_stalls_dispatch_behind_long_latency(self):
        # A load that misses to memory, followed by > ROB independent ALUs:
        # dispatch of the (rob+1)-th op must wait for the load to commit.
        rows = [(isa.LOAD, 0, 0, 0x100000, False)] + alu_rows(64)
        core, _ = run(build_trace(rows), rob_size=32, iq_size=32, lsq_size=32)
        tl = core.timeline
        load_commit = tl.commit[0]
        assert tl.dispatch[32] >= load_commit + 1

    def test_iq_frees_at_issue_not_commit(self):
        # Same shape, but IQ smaller than ROB: ALUs issue quickly, so the
        # IQ drains and dispatch is not blocked at the IQ boundary.
        rows = [(isa.LOAD, 0, 0, 0x100000, False)] + alu_rows(64)
        core, _ = run(build_trace(rows), rob_size=64, iq_size=8, lsq_size=32)
        tl = core.timeline
        assert tl.dispatch[9] < tl.commit[0]

    def test_lsq_limits_outstanding_memory_ops(self):
        rows = [(isa.LOAD, 0, 0, 0x100000 + 0x4000 * i, False) for i in range(16)]
        big = run(build_trace(rows), lsq_size=16, rob_size=64, iq_size=32)[1]
        small = run(build_trace(rows), lsq_size=2, rob_size=64, iq_size=32)[1]
        assert small.cycles > big.cycles


class TestBranches:
    def _branchy(self, n, taken_pattern):
        """One 4-instruction loop body ending in a branch, executed n times.

        Looping the PC keeps a single branch site, so the predictor's
        training behaviour (not cold-start effects) is what's measured.
        """
        rows = []
        for i in range(n):
            rows.extend(alu_rows(3))
            rows.append((isa.BRANCH, 1, 0, 0, taken_pattern(i)))
        return build_trace(rows, loop_pc_bytes=16)

    def test_random_branches_cost_more_than_biased(self):
        rng = np.random.default_rng(0)
        outcomes = rng.random(100) < 0.5
        random_trace = self._branchy(100, lambda i: bool(outcomes[i]))
        biased_trace = self._branchy(100, lambda i: False)
        random_cpi = run(random_trace)[1].cpi
        biased_cpi = run(biased_trace)[1].cpi
        assert random_cpi > biased_cpi

    def test_mispredict_penalty_grows_with_depth(self):
        rng = np.random.default_rng(1)
        outcomes = rng.random(150) < 0.5
        trace = self._branchy(150, lambda i: bool(outcomes[i]))
        shallow = run(trace, pipe_depth=7)[1]
        deep = run(trace, pipe_depth=24)[1]
        assert deep.cpi > shallow.cpi
        assert deep.branch_mispredict_rate == pytest.approx(
            shallow.branch_mispredict_rate, abs=1e-9
        )

    def test_perfectly_biased_branches_learned(self):
        trace = self._branchy(200, lambda i: False)
        result = run(trace)[1]
        assert result.branch_mispredict_rate < 0.05


class TestMemoryTiming:
    def test_load_hit_latency_visible(self):
        # load -> dependent alu chain; higher dl1 latency slows the chain.
        rows = []
        for i in range(100):
            rows.append((isa.LOAD, 0, 0, 0x1000, False))
            rows.append((isa.IALU, 1, 0, 0, False))
        fast = run(build_trace(rows), dl1_lat=1)[1]
        slow = run(build_trace(rows), dl1_lat=4)[1]
        assert slow.cycles > fast.cycles

    def test_store_to_load_forwarding(self):
        # store to A, then immediately load A: must not pay a cache miss.
        rows = [
            (isa.STORE, 0, 0, 0x123440, False),
            (isa.LOAD, 0, 0, 0x123440, False),
        ] * 50
        core, result = run(build_trace(rows))
        assert result.store_forward_rate > 0.9

    def test_l2_latency_affects_l1_missing_loads(self, tiny_trace):
        fast = run(tiny_trace, l2_lat=5)[1]
        slow = run(tiny_trace, l2_lat=20)[1]
        assert slow.cpi > fast.cpi


class TestWarmup:
    def test_warmup_excludes_cold_misses(self, tiny_trace):
        cold = run(tiny_trace, warmup=0)[1]
        core = OutOfOrderCore(ProcessorConfig())
        warm = core.run(tiny_trace, warmup=len(tiny_trace) // 4)
        # Warm-region L1 miss rate is lower than the cold-start rate.
        assert warm.dl1_miss_rate <= cold.dl1_miss_rate

    def test_warmup_instruction_accounting(self, tiny_trace):
        core = OutOfOrderCore(ProcessorConfig())
        result = core.run(tiny_trace, warmup=500)
        assert result.instructions == len(tiny_trace) - 500

    def test_invalid_warmup(self, tiny_trace):
        core = OutOfOrderCore(ProcessorConfig())
        with pytest.raises(ValueError):
            core.run(tiny_trace, warmup=len(tiny_trace))

    def test_default_warmup_is_one_eighth(self, tiny_trace):
        core = OutOfOrderCore(ProcessorConfig())
        result = core.run(tiny_trace)
        assert result.instructions == len(tiny_trace) - len(tiny_trace) // 8


class TestEdgeCases:
    def test_single_instruction(self):
        _, result = run(build_trace([(isa.IALU, 0, 0, 0, False)]))
        assert result.instructions == 1
        assert result.cpi > 0

    def test_all_jumps(self):
        rows = [(isa.JUMP, 0, 0, 0, True)] * 40
        _, result = run(build_trace(rows, loop_pc_bytes=32))
        assert result.cpi > 0
        assert result.branch_mispredict_rate == 0.0  # no conditionals

    def test_fp_divider_serialises(self):
        rows = [(isa.FPDIV, 0, 0, 0, False)] * 6 + alu_rows(4)
        core, result = run(build_trace(rows, loop_pc_bytes=64))
        tl = core.timeline
        interval = isa.OP_TIMING[isa.FPDIV][1]
        num_fp = ProcessorConfig().num_fp
        # With num_fp units, the (num_fp+1)-th divide waits a full interval.
        assert tl.issue[num_fp] - tl.issue[0] >= interval

    def test_store_heavy_stream(self):
        rows = [(isa.STORE, 0, 0, 0x1000 + 8 * i, False) for i in range(100)]
        _, result = run(build_trace(rows, loop_pc_bytes=64))
        assert result.cpi > 0
        assert result.dl1_miss_rate < 1.0

    def test_mixed_trace_all_op_classes(self):
        rows = []
        for op in (isa.IALU, isa.IMULT, isa.IDIV, isa.FPALU, isa.FPMULT,
                   isa.FPDIV, isa.LOAD, isa.STORE):
            addr = 0x3000 if op in (isa.LOAD, isa.STORE) else 0
            rows.append((op, 0, 0, addr, False))
        rows.append((isa.BRANCH, 1, 0, 0, True))
        rows.append((isa.JUMP, 0, 0, 0, True))
        _, result = run(build_trace(rows * 10))
        assert result.instructions == 100
