"""End-to-end integration tests: the full stack on small budgets.

These run the complete pipeline — synthetic workload -> detailed
simulation -> LHS sampling -> RBF model -> validation — with reduced trace
lengths and sample sizes so they stay test-suite fast while still
exercising every layer together.
"""

import numpy as np
import pytest

from repro.core.design_space import paper_design_space, paper_test_space
from repro.core.procedure import BuildRBFModel
from repro.experiments.report import emit, results_dir
from repro.experiments.runner import SimulationRunner
from repro.models.linear import LinearInteractionModel
from repro.core.validation import prediction_errors
from repro.sampling.random_design import random_design

TRACE_LENGTH = 4096  # small but long enough for warm caches


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """A full modeling stack for one benchmark on a reduced budget."""
    cache = tmp_path_factory.mktemp("simcache")
    space = paper_design_space()
    runner = SimulationRunner("twolf", trace_length=TRACE_LENGTH, cache_dir=cache)
    builder = BuildRBFModel(
        space, runner.cpi, seed=7, lhs_candidates=16,
        p_min_grid=(1, 2), alpha_grid=(3.0, 5.0, 8.0),
    )
    tspace = paper_test_space()
    test_phys = tspace.decode(random_design(tspace, 25, seed=5))
    test_cpi = runner.cpi(test_phys)
    return space, runner, builder, test_phys, test_cpi


class TestFullPipeline:
    def test_model_reaches_usable_accuracy(self, stack):
        space, runner, builder, test_phys, test_cpi = stack
        result = builder.build(60, test_phys, test_cpi)
        assert result.errors.mean < 8.0
        assert result.errors.max < 40.0

    def test_model_beats_linear_baseline(self, stack):
        space, runner, builder, test_phys, test_cpi = stack
        result = builder.build(60, test_phys, test_cpi)
        linear = LinearInteractionModel.fit(result.unit_points, result.responses)
        lin = prediction_errors(test_cpi, linear.predict(space.encode(test_phys)))
        assert result.errors.mean < lin.mean * 1.5

    def test_simulation_reuse_across_builds(self, stack):
        space, runner, builder, test_phys, test_cpi = stack
        before = runner.simulations_run
        builder.build(60)  # identical sample -> fully cached
        assert runner.simulations_run == before

    def test_predictions_positive_everywhere(self, stack, rng):
        space, runner, builder, *_ = stack
        result = builder.build(60)
        random_unit = rng.random((200, space.dimension))
        pred = result.model.predict(random_unit)
        assert np.all(pred > 0)

    def test_cpi_range_is_sane(self, stack):
        _, _, builder, _, test_cpi = stack
        assert 0.25 < test_cpi.min()
        assert test_cpi.max() < 50


class TestReport:
    def test_emit_writes_and_returns_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "r"))
        path = emit("unit-test", "hello table")
        assert path.read_text() == "hello table\n"
        assert results_dir() == tmp_path / "r"
