"""Per-rule tests for the ``repro.lint`` static-analysis pass.

Each rule gets (at least) one positive fixture that must fire and one
suppressed fixture that must stay silent; the framework itself (noqa
parsing, baseline, reporters, CLI exit codes) is covered at the end.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.lint import Baseline, Finding, LintRunner, fingerprint
from repro.lint.core import RULES, FileContext, parse_suppressions
from repro.lint.reporters import render_json, render_text


def lint_source(tmp_path, source, filename="snippet.py", select=None,
                extra_files=()):
    """Write ``source`` (plus fixtures) under ``tmp_path`` and lint it all."""
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    for rel, text in extra_files:
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text))
    runner = LintRunner(select=set(select) if select else None)
    return runner.run([str(tmp_path)])


def rule_ids(result):
    return sorted(f.rule for f in result.findings)


class TestRNG001:
    def test_flags_numpy_and_stdlib_global_rng(self, tmp_path):
        result = lint_source(tmp_path, """\
            import random
            import numpy as np

            def draw():
                np.random.seed(0)
                a = np.random.random(4)
                b = random.randint(0, 3)
                return a, b
            """)
        assert rule_ids(result) == ["RNG001", "RNG001", "RNG001"]

    def test_allows_generator_construction_and_threading(self, tmp_path):
        result = lint_source(tmp_path, """\
            import random
            import numpy as np

            def draw(rng: np.random.Generator):
                spare = np.random.default_rng(1234)
                local = random.Random(7)
                return rng.random(4), spare.integers(3), local.random()
            """)
        assert result.ok

    def test_inline_noqa_suppresses(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np
            x = np.random.random(4)  # repro: noqa[RNG001]
            """)
        assert result.ok and len(result.suppressed) == 1


class TestNUM001:
    def test_flags_inv_and_normal_equations(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np

            def fit(h, y):
                w = np.linalg.inv(h.T @ h) @ h.T @ y
                v = np.linalg.solve(h.T @ h, h.T @ y)
                return w, v
            """)
        assert rule_ids(result) == ["NUM001", "NUM001"]

    def test_allows_regularized_solve_and_lstsq(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np

            def fit(h, y, ridge=1e-9):
                gram = h.T @ h
                gram[np.diag_indices_from(gram)] += ridge
                w = np.linalg.solve(gram, h.T @ y)
                v = np.linalg.lstsq(h, y, rcond=None)[0]
                return w, v
            """)
        assert result.ok

    def test_file_level_noqa_suppresses(self, tmp_path):
        result = lint_source(tmp_path, """\
            # repro: noqa[NUM001]
            import numpy as np

            def fit(h, y):
                return np.linalg.inv(h.T @ h) @ h.T @ y
            """)
        assert result.ok and len(result.suppressed) == 1


class TestNUM002:
    def test_flags_float_literal_equality(self, tmp_path):
        result = lint_source(tmp_path, """\
            def check(cpi):
                if cpi == 1.0:
                    return True
                return cpi != -0.5
            """)
        assert rule_ids(result) == ["NUM002", "NUM002"]

    def test_allows_int_equality_and_tolerances(self, tmp_path):
        result = lint_source(tmp_path, """\
            import math

            def check(n, cpi):
                return n == 3 and math.isclose(cpi, 1.0) and cpi >= 0.5
            """)
        assert result.ok

    def test_inline_noqa_suppresses(self, tmp_path):
        result = lint_source(tmp_path, """\
            def exact_zero(x):
                return x == 0.0  # repro: noqa[NUM002]
            """)
        assert result.ok and len(result.suppressed) == 1


class TestDS001:
    def test_flags_typo_in_param_kwarg_with_hint(self, tmp_path):
        result = lint_source(tmp_path, """\
            def render(grid):
                grid.plot(param_x="l2_latency", x_values=[5, 10])
            """)
        assert rule_ids(result) == ["DS001"]
        assert "l2_lat" in result.findings[0].message  # did-you-mean hint

    def test_flags_odd_key_in_design_point_dict(self, tmp_path):
        result = lint_source(tmp_path, """\
            BASELINE = {
                "pipe_depth": 15,
                "rob_size": 76,
                "l2_lat": 12,
                "il1_size": 32,
            }
            """)
        assert rule_ids(result) == ["DS001"]
        assert "'il1_size'" in result.findings[0].message

    def test_allows_canonical_names_and_unrelated_dicts(self, tmp_path):
        result = lint_source(tmp_path, """\
            POINT = {"pipe_depth": 15, "rob_size": 76, "l2_lat": 12}
            SPLITS = ["l2_lat", "dl1_lat", "rob_size"]
            PROFILES = {"mcf": 1, "twolf": 2, "vortex": 3}

            def lookup(space):
                return space["rob_size"]
            """)
        assert result.ok

    def test_inline_noqa_suppresses(self, tmp_path):
        result = lint_source(tmp_path, """\
            def render(grid):
                grid.plot(param_x="not_a_param")  # repro: noqa[DS001]
            """)
        assert result.ok and len(result.suppressed) == 1


class TestREG001:
    REGISTRY = """\
        EXPERIMENTS = {
            "fig1": Experiment(
                "Figure 1", "title",
                "repro.experiments.fig1_demo",
                "benchmarks/test_fig1_demo.py",
                "mcf",
            ),
        }
        """

    def test_flags_unregistered_experiment_module(self, tmp_path):
        result = lint_source(
            tmp_path, '"""Orphan exhibit."""\n',
            filename="experiments/fig9_orphan.py",
            extra_files=[
                ("experiments/registry.py", self.REGISTRY),
                ("experiments/fig1_demo.py", '"""Registered."""\n'),
                ("benchmarks/test_fig1_demo.py", "def test_ok():\n    pass\n"),
            ],
        )
        assert rule_ids(result) == ["REG001"]
        assert "fig9_orphan" in result.findings[0].message

    def test_flags_missing_harness_and_orphan_harness(self, tmp_path):
        result = lint_source(
            tmp_path, '"""Registered."""\n',
            filename="experiments/fig1_demo.py",
            extra_files=[
                ("experiments/registry.py", self.REGISTRY),
                # registered harness missing; an unregistered one present
                ("benchmarks/test_table9_orphan.py", "def test_x():\n    pass\n"),
            ],
        )
        messages = " | ".join(f.message for f in result.findings)
        assert "test_fig1_demo.py" in messages  # registered but missing
        assert "test_table9_orphan.py" in messages  # orphaned harness

    def test_clean_when_all_three_sides_agree(self, tmp_path):
        result = lint_source(
            tmp_path, '"""Registered."""\n',
            filename="experiments/fig1_demo.py",
            extra_files=[
                ("experiments/registry.py", self.REGISTRY),
                ("benchmarks/test_fig1_demo.py", "def test_ok():\n    pass\n"),
            ],
        )
        assert result.ok

    def test_file_level_noqa_suppresses(self, tmp_path):
        result = lint_source(
            tmp_path, '# repro: noqa[REG001]\n"""Orphan exhibit."""\n',
            filename="experiments/fig9_orphan.py",
            extra_files=[
                ("experiments/registry.py", self.REGISTRY),
                ("experiments/fig1_demo.py", '"""Registered."""\n'),
                ("benchmarks/test_fig1_demo.py", "def test_ok():\n    pass\n"),
            ],
        )
        assert result.ok and len(result.suppressed) == 1


class TestAPI001:
    def test_flags_mutable_default_and_bare_except(self, tmp_path):
        result = lint_source(tmp_path, """\
            def sweep(configs, acc=[], opts={}):
                try:
                    acc.extend(configs)
                except:
                    pass
            """)
        assert rule_ids(result) == ["API001", "API001", "API001"]

    def test_allows_none_default_and_typed_except(self, tmp_path):
        result = lint_source(tmp_path, """\
            def sweep(configs, acc=None, scale=1.0):
                acc = [] if acc is None else acc
                try:
                    acc.extend(configs)
                except ValueError:
                    pass
            """)
        assert result.ok

    def test_inline_noqa_suppresses(self, tmp_path):
        result = lint_source(tmp_path, """\
            def sweep(acc=[]):  # repro: noqa[API001]
                return acc
            """)
        assert result.ok and len(result.suppressed) == 1


class TestAPI002:
    def test_flags_calls_in_defaults(self, tmp_path):
        result = lint_source(tmp_path, """\
            from pathlib import Path

            def default_dir():
                return Path(".cache")

            def run(cache=default_dir(), names=tuple(sorted(["a"])),
                    *, out=Path("results")):
                return cache, names, out
            """, select={"API002"})
        # default_dir(), tuple(...), sorted(...) and Path(...) all fire.
        assert rule_ids(result) == ["API002"] * 4

    def test_mutable_factories_left_to_api001(self, tmp_path):
        result = lint_source(tmp_path, """\
            def sweep(acc=dict(), opts=list()):
                return acc, opts
            """)
        # dict()/list() defaults are API001's finding, reported once each.
        assert rule_ids(result) == ["API001", "API001"]

    def test_allows_constants_names_and_none_sentinel(self, tmp_path):
        result = lint_source(tmp_path, """\
            LIMIT = 50
            _UNSET = object()

            def _resolve(cache):
                return cache

            def run(cache=None, limit=LIMIT, scale=1.0, mode="fast",
                    sentinel=_UNSET):
                cache = _resolve(cache)
                return cache, limit, scale, mode, sentinel
            """, select={"API002"})
        assert result.ok

    def test_inline_noqa_suppresses(self, tmp_path):
        result = lint_source(tmp_path, """\
            import os

            def run(root=os.getcwd()):  # repro: noqa[API002]
                return root
            """, select={"API002"})
        assert result.ok and len(result.suppressed) == 1


class TestOBS001:
    def test_flags_print_in_library_module(self, tmp_path):
        result = lint_source(tmp_path, """\
            def run():
                print("progress: 3/10")
                return 3
            """, filename="repro/experiments/demo.py", select={"OBS001"})
        assert rule_ids(result) == ["OBS001"]

    def test_exempts_cli_reporters_obs_and_non_library_code(self, tmp_path):
        result = lint_source(
            tmp_path,
            'print("usage: repro ...")\n',
            filename="repro/cli.py",
            select={"OBS001"},
            extra_files=[
                ("repro/lint/cli.py", 'print("findings")\n'),
                ("repro/lint/reporters.py", 'print("path:1:0 X001 msg")\n'),
                ("repro/obs/console.py", 'print("echoed")\n'),
                ("examples/sweep.py", 'print("cpi table")\n'),
            ],
        )
        assert result.ok

    def test_inline_noqa_suppresses(self, tmp_path):
        result = lint_source(tmp_path, """\
            def debug():
                print("x")  # repro: noqa[OBS001]
            """, filename="repro/util/debug.py", select={"OBS001"})
        assert result.ok and len(result.suppressed) == 1


class TestOBS002:
    def test_flags_raw_clock_reads_in_library_module(self, tmp_path):
        result = lint_source(tmp_path, """\
            import time

            def work():
                start = time.perf_counter()
                stamp = time.time()
                tick = time.monotonic()
                return time.perf_counter() - start, stamp, tick
            """, filename="repro/experiments/demo.py", select={"OBS002"})
        assert rule_ids(result) == ["OBS002"] * 4

    def test_flags_from_time_import_of_clocks(self, tmp_path):
        result = lint_source(tmp_path, """\
            from time import perf_counter, sleep

            def work():
                return perf_counter()
            """, filename="repro/core/demo.py", select={"OBS002"})
        assert rule_ids(result) == ["OBS002"]

    def test_allows_non_clock_time_usage(self, tmp_path):
        result = lint_source(tmp_path, """\
            import time

            def pace():
                time.sleep(0.1)
                return time.strftime("%Y")
            """, filename="repro/util/pace.py", select={"OBS002"})
        assert result.ok

    def test_exempts_obs_cli_and_non_library_code(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import time\nstart = time.perf_counter()\n",
            filename="repro/obs/tracing.py",
            select={"OBS002"},
            extra_files=[
                ("repro/obs/prof/bench.py",
                 "import time\nt = time.monotonic()\n"),
                ("benchmarks/test_speed.py",
                 "import time\nt0 = time.time()\n"),
                ("examples/sweep.py",
                 "from time import perf_counter\nt = perf_counter()\n"),
            ],
        )
        assert result.ok

    def test_inline_noqa_suppresses(self, tmp_path):
        result = lint_source(tmp_path, """\
            import time

            def now():
                return time.time()  # repro: noqa[OBS002]
            """, filename="repro/util/stamp.py", select={"OBS002"})
        assert result.ok and len(result.suppressed) == 1


class TestOBS003:
    def test_flags_raw_serialisation_in_library_module(self, tmp_path):
        result = lint_source(tmp_path, """\
            import pickle
            import joblib
            import numpy as np

            def persist(model, x, path):
                pickle.dump(model, open(path, "wb"))
                blob = pickle.dumps(model)
                np.save(path, x)
                np.savez(path, x=x)
                np.savez_compressed(path, x=x)
                joblib.dump(model, path)
                return blob
            """, filename="repro/experiments/demo.py", select={"OBS003"})
        assert rule_ids(result) == ["OBS003"] * 6

    def test_flags_from_imports_of_serialisers(self, tmp_path):
        result = lint_source(tmp_path, """\
            from pickle import dumps, loads
            from numpy import save, asarray

            def persist(model, x, path):
                save(path, asarray(x))
                return dumps(model), loads
            """, filename="repro/core/demo.py", select={"OBS003"})
        assert rule_ids(result) == ["OBS003"] * 2

    def test_allows_loading_and_unrelated_calls(self, tmp_path):
        result = lint_source(tmp_path, """\
            import pickle
            import numpy as np

            def restore(path):
                with open(path, "rb") as fh:
                    state = pickle.load(fh)
                return state, np.load(path), np.saved_flag
            """, filename="repro/util/restore.py", select={"OBS003"})
        assert result.ok

    def test_exempts_seams_and_non_library_code(self, tmp_path):
        result = lint_source(
            tmp_path,
            "import numpy as np\nnp.save('m.npy', np.zeros(3))\n",
            filename="repro/models/io.py",
            select={"OBS003"},
            extra_files=[
                ("repro/models/registry.py",
                 "import pickle\npickle.dump({}, open('x', 'wb'))\n"),
                ("repro/simulator/trace_io.py",
                 "import numpy as np\nnp.savez_compressed('t.npz')\n"),
                ("benchmarks/test_speed.py",
                 "import pickle\nblob = pickle.dumps([1])\n"),
                ("examples/sweep.py",
                 "import numpy as np\nnp.save('out.npy', np.zeros(2))\n"),
            ],
        )
        assert result.ok

    def test_inline_noqa_suppresses(self, tmp_path):
        result = lint_source(tmp_path, """\
            import pickle

            def stash(obj, fh):
                pickle.dump(obj, fh)  # repro: noqa[OBS003]
            """, filename="repro/util/stash.py", select={"OBS003"})
        assert result.ok and len(result.suppressed) == 1


class TestOBS004:
    def test_flags_blocking_calls_reachable_from_async(self, tmp_path):
        result = lint_source(tmp_path, """\
            import time
            import socket

            async def handler(reader, writer):
                time.sleep(0.1)
                payload = open("body.json").read()
                record(payload)

            def record(payload):
                sock = socket.create_connection(("host", 80))
                log_path.write_text(payload)
            """, filename="repro/serve/http.py", select={"OBS004"})
        assert rule_ids(result) == ["OBS004"] * 4

    def test_unreachable_sync_code_is_not_constrained(self, tmp_path):
        result = lint_source(tmp_path, """\
            import time

            async def handler(reader, writer):
                return respond()

            def respond():
                return 200

            def startup_only():
                time.sleep(1.0)
                return open("models.json").read()
            """, filename="repro/serve/app.py", select={"OBS004"})
        assert result.ok

    def test_self_method_calls_are_traversed(self, tmp_path):
        result = lint_source(tmp_path, """\
            import time

            class Server:
                async def handle(self, request):
                    return self.slow()

                def slow(self):
                    time.sleep(2.0)
            """, filename="repro/serve/app.py", select={"OBS004"})
        assert rule_ids(result) == ["OBS004"]

    def test_only_serve_modules_are_in_scope(self, tmp_path):
        result = lint_source(tmp_path, """\
            import time

            async def poll():
                time.sleep(1.0)
            """, filename="repro/obs/live/poll.py", select={"OBS004"})
        assert result.ok

    def test_inline_noqa_suppresses(self, tmp_path):
        result = lint_source(tmp_path, """\
            import time

            async def handler():
                time.sleep(0.01)  # repro: noqa[OBS004]
            """, filename="repro/serve/http.py", select={"OBS004"})
        assert result.ok and len(result.suppressed) == 1


class TestFramework:
    def test_syntax_error_becomes_finding(self, tmp_path):
        result = lint_source(tmp_path, "def broken(:\n")
        assert rule_ids(result) == ["SYN001"]

    def test_bare_noqa_suppresses_all_rules(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np
            x = np.random.random(4)  # repro: noqa
            """)
        assert result.ok and len(result.suppressed) == 1

    def test_noqa_parsing_levels(self):
        supp = parse_suppressions(
            "# repro: noqa[DS001]\n"
            "x = 1  # repro: noqa[NUM002, RNG001]\n"
        )
        assert supp.is_suppressed("DS001", 99)  # file level
        assert supp.is_suppressed("NUM002", 2)
        assert supp.is_suppressed("RNG001", 2)
        assert not supp.is_suppressed("NUM002", 1)

    def test_baseline_grandfathers_then_catches_new(self, tmp_path):
        source = "def f(x):\n    return x == 1.0\n"
        path = tmp_path / "old.py"
        path.write_text(source)
        runner = LintRunner(select={"NUM002"})
        first = runner.run([str(path)])
        assert len(first.findings) == 1
        baseline = Baseline.from_findings(
            [(f, source.splitlines()) for f in first.findings])
        bl_path = tmp_path / "baseline.json"
        baseline.save(str(bl_path))
        reloaded = Baseline.load(str(bl_path))
        clean = runner.run([str(path)], baseline=reloaded)
        assert clean.ok and len(clean.baselined) == 1
        # a second, new violation is NOT grandfathered
        path.write_text(source + "def g(x):\n    return x != 2.0\n")
        second = runner.run([str(path)], baseline=reloaded)
        assert len(second.findings) == 1

    def test_fingerprint_survives_line_shift(self):
        lines_a = ["", "x == 1.0"]
        lines_b = ["", "", "", "x == 1.0"]
        fa = fingerprint(Finding("NUM002", "p.py", 2, 0, "m"), lines_a)
        fb = fingerprint(Finding("NUM002", "p.py", 4, 0, "m"), lines_b)
        assert fa == fb

    def test_reporters_render(self, tmp_path):
        import io

        result = lint_source(tmp_path, "x = 1 == 1.0\n")
        text = io.StringIO()
        render_text(result, text)
        assert "NUM002" in text.getvalue()
        blob = io.StringIO()
        render_json(result, blob)
        doc = json.loads(blob.getvalue())
        assert doc["ok"] is False
        assert doc["counts"] == {"NUM002": 1}
        assert doc["findings"][0]["rule"] == "NUM002"
        assert {"rule", "path", "line", "col", "message"} <= set(doc["findings"][0])

    def test_every_rule_has_id_title_and_docs(self):
        expected = {"RNG001", "NUM001", "NUM002", "DS001", "REG001",
                    "API001", "API002", "OBS001", "OBS004"}
        assert expected <= set(RULES)
        for rule_id, cls in RULES.items():
            assert cls.title, rule_id
            assert cls.rationale, rule_id
            assert cls.scope in ("file", "project"), rule_id

    def test_context_from_source_parses_suppressions(self):
        ctx = FileContext.from_source("x.py", "a = 1  # repro: noqa[API001]\n")
        assert ctx.suppressions.is_suppressed("API001", 1)


class TestCli:
    def _run(self, *argv, cwd=None):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *argv],
            capture_output=True, text=True, env=env, cwd=cwd,
        )

    def test_exit_zero_on_clean_file_and_one_on_violation(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import numpy as np\nnp.random.seed(0)\n")
        assert self._run(str(clean)).returncode == 0
        proc = self._run(str(dirty))
        assert proc.returncode == 1
        assert "RNG001" in proc.stdout

    def test_json_format_is_machine_readable(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("x = 0.0\nassert x == 0.1\n")
        proc = self._run(str(dirty), "--format", "json")
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["counts"] == {"NUM002": 1}

    def test_select_and_list_rules(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import numpy as np\nnp.random.seed(0)\n")
        assert self._run(str(dirty), "--select", "NUM002").returncode == 0
        listing = self._run("--list-rules")
        assert listing.returncode == 0
        for rule_id in ("RNG001", "NUM001", "NUM002", "DS001", "REG001",
                        "API001", "API002", "OBS001", "OBS004"):
            assert rule_id in listing.stdout

    def test_missing_path_is_usage_error(self):
        assert self._run("/nonexistent/nowhere").returncode == 2

    def test_repro_cli_lint_subcommand(self, tmp_path):
        from repro.cli import main as repro_main

        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert repro_main(["lint", str(clean), "--no-baseline"]) == 0


class TestNoqaMultilineStatements:
    # Regression: suppression used to match only the physical line of the
    # finding's anchor, so a trailing noqa on any other line of a
    # multi-line statement (parenthesised call, decorated def) was lost.

    def test_trailing_noqa_anywhere_in_a_multiline_call(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np

            vals = np.random.random(
                4
            )  # repro: noqa[RNG001]
            """)
        assert rule_ids(result) == []
        assert [f.rule for f in result.suppressed] == ["RNG001"]

    def test_expansion_does_not_leak_past_the_statement(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np

            vals = np.random.random(
                4
            )  # repro: noqa[RNG001]
            more = np.random.random(4)
            """)
        assert rule_ids(result) == ["RNG001"]
        assert result.findings[0].line == 6

    def test_decorated_def_header_counts_as_one_span(self):
        src = (
            "@decorate(\n"
            "    arg=1,\n"
            ")  # repro: noqa[API001]\n"
            "def f():\n"
            "    x = 1\n"
            "    return x\n"
        )
        ctx = FileContext.from_source("x.py", src)
        for line in (1, 2, 3, 4):
            assert ctx.suppressions.is_suppressed("API001", line), line
        assert not ctx.suppressions.is_suppressed("API001", 5)

    def test_noqa_on_a_body_line_does_not_blanket_the_function(self):
        src = (
            "def f():\n"
            "    a = 1  # repro: noqa[NUM002]\n"
            "    b = 2\n"
            "    return a + b\n"
        )
        ctx = FileContext.from_source("x.py", src)
        assert ctx.suppressions.is_suppressed("NUM002", 2)
        assert not ctx.suppressions.is_suppressed("NUM002", 1)
        assert not ctx.suppressions.is_suppressed("NUM002", 3)
