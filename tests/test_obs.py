"""Tests for ``repro.obs``: spans, metrics, sinks, manifests, CLI wiring.

Covers the observability contracts: deterministic span timing under an
injected clock, JSONL round-trips, exact metrics merge across real
processes, worker-span funneling through the parallel runner, structured
stage-failure reporting, and — the load-bearing one — that tracing
changes *nothing* about the numbers (traced and untraced runs are
bitwise-identical).
"""

import json
import multiprocessing
import sys

import numpy as np
import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.core.design_space import paper_design_space, paper_test_space
from repro.experiments.common import stage
from repro.experiments.runner import SimulationRunner

TRACE_LENGTH = 2000


def point(**overrides):
    base = {
        "pipe_depth": 12, "rob_size": 64, "iq_frac": 0.5, "lsq_frac": 0.5,
        "l2_size_kb": 1024, "l2_lat": 12, "il1_size_kb": 32,
        "dl1_size_kb": 32, "dl1_lat": 2,
    }
    base.update(overrides)
    return base


class FakeClock:
    """Deterministic clock: each reading advances by ``step``."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpans:
    def test_nesting_and_deterministic_timing(self):
        with obs.collecting(clock=FakeClock()) as col:
            # clock: origin=0, outer.start=1, inner.start=2, inner.end=3,
            # outer.end=4 — every duration is exact, no tolerance needed.
            with obs.span("outer", k=1) as outer:
                with obs.span("inner"):
                    pass
                outer.set(done=True)
        assert [r.name for r in col.roots] == ["outer"]
        outer_node = col.roots[0]
        assert outer_node.attrs == {"k": 1, "done": True}
        assert outer_node.duration == 3.0
        assert outer_node.children[0].name == "inner"
        assert outer_node.children[0].duration == 1.0
        assert outer_node.self_time == 2.0

    def test_noop_when_disabled(self):
        assert not obs.enabled()
        with obs.span("anything", k=1) as sp:
            assert sp is obs.NOOP_SPAN
            sp.set(ignored=True)  # must not raise nor record
        obs.inc("nothing")
        obs.observe("nothing", 1.0)
        assert obs.current() is None

    def test_exception_closes_span_and_tags_error(self):
        with obs.collecting(clock=FakeClock()) as col:
            with pytest.raises(ValueError):
                with obs.span("doomed"):
                    raise ValueError("boom")
        node = col.roots[0]
        assert node.end is not None
        assert node.attrs["error"] == "ValueError"

    def test_traced_decorator(self):
        @obs.traced("wrapped/fn")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3  # works untraced
        with obs.collecting(clock=FakeClock()) as col:
            assert add(3, 4) == 7
        assert col.roots[0].name == "wrapped/fn"

    def test_nested_collectors_unwind_correctly(self):
        with obs.collecting() as outer:
            with obs.collecting() as inner:
                with obs.span("inner-only"):
                    pass
            assert obs.current() is outer
        assert not obs.enabled()
        assert [r.name for r in inner.roots] == ["inner-only"]
        assert outer.roots == []


class TestMetrics:
    def test_histogram_summary(self):
        h = obs.Histogram()
        for v in (2.0, 4.0, 9.0):
            h.observe(v)
        assert h.as_dict() == {
            "count": 3, "sum": 15.0, "min": 2.0, "max": 9.0, "mean": 5.0,
            "p50": 4.0, "p90": 9.0, "p99": 9.0,
            "samples": [2.0, 4.0, 9.0],
        }

    def test_histogram_percentiles_exact_under_cap(self):
        h = obs.Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(90) == 90.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0

    def test_histogram_percentiles_survive_compaction(self):
        h = obs.Histogram()
        n = obs.Histogram.SAMPLE_CAP * 3
        for v in range(n):
            h.observe(float(v))
        assert len(h.samples) <= obs.Histogram.SAMPLE_CAP
        assert h.count == n  # exact fields untouched by compaction
        assert h.min == 0.0 and h.max == float(n - 1)
        # Rank-preserving approximation: within ~1% of the true quantile.
        assert h.percentile(50) == pytest.approx(n / 2, rel=0.02)
        assert h.percentile(99) == pytest.approx(0.99 * n, rel=0.02)

    def test_histogram_compaction_is_deterministic(self):
        def build():
            h = obs.Histogram()
            rng = np.random.default_rng(3)
            for v in rng.random(obs.Histogram.SAMPLE_CAP * 2 + 17):
                h.observe(float(v))
            return h

        assert build().samples == build().samples

    def test_merge_from_old_snapshot_without_samples(self):
        h = obs.Histogram()
        h.observe(1.0)
        h.merge({"count": 2, "sum": 7.0, "min": 3.0, "max": 4.0})
        assert h.count == 3 and h.total == 8.0
        assert h.percentile(50) == 1.0  # only local samples contribute

    def test_percentiles_merge_across_registries(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        for v in range(1, 51):
            a.observe("lat", float(v))
        for v in range(51, 101):
            b.observe("lat", float(v))
        a.merge(b.snapshot())
        merged = a.histogram("lat")
        assert merged.percentile(50) == 50.0
        assert merged.percentile(90) == 90.0

    def test_merge_semantics(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.inc("sims", 3)
        b.inc("sims", 4)
        a.set_gauge("depth", 1.0)
        b.set_gauge("depth", 2.0)
        a.observe("lat", 1.0)
        b.observe("lat", 5.0)
        a.merge(b.snapshot())
        assert a.counter("sims") == 7.0
        assert a.gauge("depth") == 2.0  # last writer wins
        merged = a.histogram("lat")
        assert (merged.count, merged.total, merged.min, merged.max) == (2, 6.0, 1.0, 5.0)

    def test_merge_is_exact_vs_concatenated_observations(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=40)
        whole = obs.MetricsRegistry()
        parts = [obs.MetricsRegistry() for _ in range(4)]
        for i, v in enumerate(values):
            whole.observe("x", v)
            parts[i % 4].observe("x", v)
        combined = obs.MetricsRegistry()
        for part in parts:
            combined.merge(part.snapshot())
        got, want = combined.histogram("x"), whole.histogram("x")
        assert (got.count, got.min, got.max) == (want.count, want.min, want.max)
        # Sums differ only by float association order across the partition.
        assert got.total == pytest.approx(want.total, rel=1e-12)


def _child_metrics(offset, queue):
    """Child-process worker: record some metrics and ship the snapshot."""
    reg = obs.MetricsRegistry()
    reg.inc("sims", 2 + offset)
    reg.observe("lat", float(offset))
    reg.observe("lat", float(offset + 10))
    queue.put(reg.snapshot())


class TestTwoProcessMetricsMerge:
    def test_snapshots_merge_exactly_across_processes(self):
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [ctx.Process(target=_child_metrics, args=(off, queue))
                 for off in (0, 1)]
        for proc in procs:
            proc.start()
        snapshots = [queue.get(timeout=60) for _ in procs]
        for proc in procs:
            proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in procs)
        parent = obs.MetricsRegistry()
        for snap in snapshots:
            parent.merge(snap)
        assert parent.counter("sims") == 5.0  # 2 + 3
        lat = parent.histogram("lat")
        assert (lat.count, lat.min, lat.max, lat.total) == (4, 0.0, 11.0, 22.0)


class TestSinks:
    def _sample_collector(self):
        collector = obs.Collector(clock=FakeClock())
        with obs.collecting(clock=FakeClock()) as collector:
            with obs.span("build", seed=42):
                with obs.span("fit"):
                    pass
            obs.inc("sims", 3)
            obs.observe("lat", 1.5)
            obs.record_failure("fit", ValueError("singular"), centers=4)
        return collector

    def test_jsonl_round_trip(self, tmp_path):
        collector = self._sample_collector()
        path = tmp_path / "trace.jsonl"
        obs.write_trace(collector, path, header={"command": "test"})
        trace = obs.read_trace(path)
        assert trace.header["command"] == "test"
        (root,) = trace.roots
        assert root.name == "build" and root.attrs == {"seed": 42}
        assert [c.name for c in root.children] == ["fit"]
        assert root.duration == pytest.approx(3.0)
        assert trace.metrics["counters"]["sims"] == 3.0
        assert trace.metrics["histograms"]["lat"]["count"] == 1
        (failure,) = [e for e in trace.events if e["type"] == "failure"]
        assert failure["stage"] == "fit" and failure["centers"] == 4

    def test_every_line_is_json(self, tmp_path):
        collector = self._sample_collector()
        path = tmp_path / "trace.jsonl"
        obs.write_trace(collector, path)
        lines = path.read_text().strip().split("\n")
        docs = [json.loads(line) for line in lines]
        assert docs[0]["type"] == "trace"
        assert docs[-1]["type"] == "metrics"
        spans = [d for d in docs if d["type"] == "span"]
        assert len(spans) == 2
        # Parents precede children, so a streaming reader can build the tree.
        ids = {s["id"] for s in spans}
        for s in spans:
            assert s["parent"] is None or s["parent"] in ids

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "trace", "version": 1}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            obs.read_trace(path)

    def test_summary_renders_tree_counts_and_failures(self, tmp_path):
        collector = self._sample_collector()
        path = tmp_path / "trace.jsonl"
        obs.write_trace(collector, path)
        text = obs.render_summary(obs.read_trace(path))
        assert "build" in text and "  fit" in text
        assert "FAILURE in fit" in text
        assert "sims" in text and "lat" in text
        # Percentile columns on the duration histograms.
        assert "p50=1.5" in text and "p90=1.5" in text and "p99=1.5" in text

    def test_summary_renders_percentiles_without_samples(self):
        # Traces from older writers carry no p50/p99 keys; the renderer
        # falls back to the plain n/sum/mean columns.
        trace = obs.TraceData(
            header={}, roots=[], events=[],
            metrics={"histograms": {"lat": {
                "count": 2, "sum": 3.0, "mean": 1.5}}},
        )
        text = obs.render_summary(trace)
        assert "lat" in text and "p50" not in text


class TestRunnerIntegration:
    def test_stats_is_a_view_over_the_registry(self, tmp_path):
        runner = SimulationRunner("mcf", trace_length=TRACE_LENGTH,
                                  cache_dir=tmp_path)
        runner.result_at(point())
        runner.result_at(point())
        stats = runner.stats()
        assert stats["simulations_run"] == 1 and stats["cache_hits"] == 1
        assert runner.metrics.counter("simulations_run") == 1.0
        assert runner.metrics.counter("cache_hits") == 1.0
        assert runner.simulations_run == 1 and runner.cache_hits == 1

    def test_worker_spans_merge_into_parent_trace(self, tmp_path):
        space = paper_design_space()
        grid = np.vstack([
            space.as_array(point(l2_lat=lat)) for lat in (12, 18, 24, 30)
        ])
        runner = SimulationRunner("mcf", trace_length=TRACE_LENGTH,
                                  cache_dir=tmp_path, jobs=2)
        with obs.collecting() as col:
            runner.cpi(grid)
        spans = [s for root in col.roots for s in root.walk()]
        sim_spans = [s for s in spans if s.name == "simulate"]
        assert len(sim_spans) == 4  # one per uncached point, from workers
        assert all(s.attrs.get("worker") for s in sim_spans)
        assert all(s.duration > 0 for s in sim_spans)
        # Worker metrics merged too: the engine's throughput counters.
        assert col.metrics.counter("sim/instructions") > 0

    def test_tracing_never_perturbs_results(self, tmp_path):
        space = paper_design_space()
        grid = np.vstack([
            space.as_array(point(l2_lat=lat)) for lat in (12, 18)
        ])
        plain = SimulationRunner("mcf", trace_length=TRACE_LENGTH,
                                 cache_dir=tmp_path / "plain")
        traced = SimulationRunner("mcf", trace_length=TRACE_LENGTH,
                                  cache_dir=tmp_path / "traced")
        expected = plain.cpi(grid)
        with obs.collecting():
            got = traced.cpi(grid)
        assert np.array_equal(expected, got)  # bitwise, not approximate


class TestFailureReporting:
    def test_stage_records_event_and_annotates_exception(self):
        with obs.collecting() as col:
            with pytest.raises(RuntimeError) as excinfo:
                with stage("rbf_model", benchmark="mcf"):
                    raise RuntimeError("singular gram matrix")
        (event,) = [e for e in col.events if e["type"] == "failure"]
        assert event["stage"] == "rbf_model"
        assert event["benchmark"] == "mcf"
        assert event["error"] == "RuntimeError"
        failures = obs.recent_failures()
        assert failures[-1]["stage"] == "rbf_model"
        if sys.version_info >= (3, 11):
            assert any("rbf_model" in note
                       for note in excinfo.value.__notes__)

    def test_failures_recorded_even_without_tracing(self):
        before = len(obs.recent_failures())
        with pytest.raises(ValueError):
            with stage("test_set", benchmark="gcc"):
                raise ValueError("trace too short")
        failures = obs.recent_failures()
        assert len(failures) == before + 1 or len(failures) == 16  # bounded
        assert failures[-1]["stage"] == "test_set"

    def test_run_exhibit_unknown_id_raises(self):
        from repro.experiments.registry import run_exhibit

        with pytest.raises(KeyError, match="unknown exhibit"):
            run_exhibit("fig99")


class TestManifest:
    def test_design_space_hash_stable_and_sensitive(self):
        a = obs.design_space_hash(paper_design_space())
        b = obs.design_space_hash(paper_design_space())
        assert a == b and len(a) == 16
        assert obs.design_space_hash(paper_test_space()) != a
        assert obs.design_space_hash(object()) is None

    def test_build_cli_writes_manifest_and_trace(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        code = cli_main([
            "build", "--benchmark", "mcf", "--sample-size", "20",
            "--test-points", "8", "--trace-length", "2048", "--trace",
        ])
        assert code == 0
        manifest = obs.read_manifest(tmp_path / "results" / "manifest.json")
        assert manifest["schema"] == 1
        assert manifest["command"] == "build"
        assert manifest["benchmark"] == "mcf"
        assert manifest["seed"] == 42
        assert manifest["design_space_hash"] == obs.design_space_hash(
            paper_design_space())
        assert manifest["version"] == obs.package_version()
        assert "git_sha" in manifest and "python" in manifest
        assert manifest["metrics"]["counters"]["simulations_run"] == 28.0
        assert manifest["wall_time_s"] > 0
        # The trace covers the whole sample->simulate->fit->validate path.
        trace = obs.read_trace(tmp_path / "results" / "trace-build.jsonl")
        names = {s.name for root in trace.roots for s in root.walk()}
        assert {"repro/build", "build", "sample", "simulate", "fit",
                "validate"} <= names

    def test_version_flag_matches_package_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert obs.package_version() in out
