"""Tests for ``repro.obs.prof``: analyzer, bench harness, regression gate.

Covers the profiling contracts (self-time aggregation, folded-stack
round-trip), the benchmark harness (deterministic fake-clock timing,
seeded work metadata identical across runs, unstable-metadata rejection),
the regression gate (pass against a fresh baseline, demonstrable failure
against an artificially tightened one, preset separation), the CLI
surfaces (``repro bench``, ``repro trace profile``, ``trace summary
--json``, graceful handling of missing/empty/truncated traces), and the
PR's satellite guarantees: bounded ``obs.recent_failures()`` and exact
worker-collector adoption under ``jobs>1`` with a live collector.
"""

import json
from contextlib import contextmanager

import numpy as np
import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.core.design_space import paper_design_space
from repro.experiments.runner import SimulationRunner
from repro.obs import prof
from repro.obs.prof import bench as bench_mod

TRACE_LENGTH = 2000


class FakeClock:
    """Deterministic clock: each reading advances by ``step``."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def sample_trace():
    """A small deterministic trace: root -> (setup, 3x simulate -> cache)."""
    with obs.collecting(clock=FakeClock()) as col:
        with obs.span("build"):
            with obs.span("setup"):
                pass
            for _ in range(3):
                with obs.span("simulate"):
                    with obs.span("cache"):
                        pass
    return col


def round_trip(col, tmp_path, name="t.jsonl"):
    path = tmp_path / name
    obs.write_trace(col, path, header={"command": "test"})
    return obs.read_trace(path)


class TestAnalyzer:
    def test_aggregate_stacks_calls_and_self_time(self, tmp_path):
        trace = round_trip(sample_trace(), tmp_path)
        stats = {s.stack: s for s in prof.aggregate_stacks(trace)}
        sim = stats[("build", "simulate")]
        assert sim.calls == 3
        # Each simulate: start=n, cache consumes 2 ticks, end -> dur 3, self 2.
        assert sim.cum_s == pytest.approx(9.0)
        assert sim.self_s == pytest.approx(6.0)
        cache = stats[("build", "simulate", "cache")]
        assert cache.calls == 3 and cache.self_s == pytest.approx(3.0)

    def test_self_times_partition_total_duration(self, tmp_path):
        trace = round_trip(sample_trace(), tmp_path)
        total_self = sum(s.self_s for s in prof.aggregate_stacks(trace))
        (root,) = trace.roots
        assert total_self == pytest.approx(root.duration)

    def test_hot_spans_ranked_by_self_time(self, tmp_path):
        trace = round_trip(sample_trace(), tmp_path)
        rows = prof.hot_spans(trace, top=2)
        assert len(rows) == 2
        assert rows[0].self_s >= rows[1].self_s

    def test_render_profile_lists_stacks(self, tmp_path):
        trace = round_trip(sample_trace(), tmp_path)
        text = prof.render_profile(trace, top=10)
        assert "build;simulate;cache" in text
        assert "self_s" in text and "calls" in text

    def test_folded_round_trip(self, tmp_path):
        trace = round_trip(sample_trace(), tmp_path)
        folded = prof.to_folded(trace)
        parsed = prof.parse_folded(folded)
        expected = {
            s.stack: round(s.self_s * 1e6)
            for s in prof.aggregate_stacks(trace)
            if round(s.self_s * 1e6) > 0
        }
        assert parsed == expected

    def test_folded_sanitises_separator_in_names(self, tmp_path):
        with obs.collecting(clock=FakeClock()) as col:
            with obs.span("a;b c"):
                pass
        folded = prof.to_folded(round_trip(col, tmp_path))
        (line,) = folded.strip().splitlines()
        stack, _, value = line.rpartition(" ")
        assert stack == "a:b_c"
        assert int(value) > 0

    def test_parse_folded_accumulates_and_rejects_garbage(self):
        parsed = prof.parse_folded("a;b 10\na;b 5\nc 1\n")
        assert parsed == {("a", "b"): 15, ("c",): 1}
        with pytest.raises(ValueError, match="line 1"):
            prof.parse_folded("no-value-here")
        with pytest.raises(ValueError, match="not an integer"):
            prof.parse_folded("a;b notanint")

    def test_summarize_trace_shape(self, tmp_path):
        trace = round_trip(sample_trace(), tmp_path)
        doc = prof.summarize_trace(trace)
        assert doc["command"] == "test"
        stacks = {tuple(row["stack"]) for row in doc["spans"]}
        assert ("build", "simulate", "cache") in stacks
        json.dumps(doc)  # must be JSON-serialisable as-is


@contextmanager
def temp_benchmark(name, fn, **kwargs):
    """Register ``fn`` as a benchmark for the duration of the test."""
    bench_mod.benchmark(name, **kwargs)(fn)
    try:
        yield
    finally:
        bench_mod._REGISTRY.pop(name, None)


class TestBenchHarness:
    def test_fake_clock_gives_deterministic_walls(self):
        def setup(ctx):
            return lambda: {"n": 1}

        with temp_benchmark("t/fake", setup, repeats=4, warmup=1):
            (result,) = prof.run_benchmarks(
                names=["t/fake"], clock=FakeClock(), measure_memory=False)
        # Each timed repeat reads the clock twice -> exactly 1.0 apart.
        assert result.wall_all == [1.0, 1.0, 1.0, 1.0]
        assert result.wall_s == 1.0
        assert result.wall_mean_s == 1.0
        assert result.work == {"n": 1}

    def test_quick_preset_uses_quick_repeats_and_scale(self):
        seen = {}

        def setup(ctx):
            seen["scaled"] = ctx.scale(100, 10)
            return lambda: {"n": seen["scaled"]}

        with temp_benchmark("t/quick", setup, repeats=5, quick_repeats=2):
            (result,) = prof.run_benchmarks(
                names=["t/quick"], quick=True, measure_memory=False)
        assert seen["scaled"] == 10
        assert result.repeats == 2

    def test_unstable_work_metadata_is_rejected(self):
        calls = [0]

        def setup(ctx):
            def work():
                calls[0] += 1
                return {"n": calls[0]}
            return work

        with temp_benchmark("t/unstable", setup):
            with pytest.raises(prof.BenchError, match="seeded"):
                prof.run_benchmarks(names=["t/unstable"],
                                    measure_memory=False)

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="t/no-such"):
            prof.run_benchmarks(names=["t/no-such"])

    def test_registry_covers_the_hot_paths(self):
        names = {spec.name for spec in prof.registered_benchmarks()}
        assert len(names) >= 6
        assert {"trace/synthesize", "sim/end_to_end", "sim/cache_hierarchy",
                "model/tree_build", "model/aicc_select",
                "sampling/centered_l2"} <= names

    def test_work_metadata_identical_across_runs(self):
        subset = ["sampling/centered_l2", "obs/metrics_merge",
                  "model/tree_build"]
        first = prof.run_benchmarks(names=subset, quick=True,
                                    measure_memory=False)
        second = prof.run_benchmarks(names=subset, quick=True,
                                     measure_memory=False)
        assert [r.work for r in first] == [r.work for r in second]

    def test_bench_spans_land_in_active_trace(self):
        with obs.collecting() as col:
            prof.run_benchmarks(names=["obs/metrics_merge"], quick=True,
                                measure_memory=False)
        names = [s.name for root in col.roots for s in root.walk()]
        assert "bench/obs/metrics_merge" in names
        assert col.metrics.counter("bench/benchmarks_run") == 1.0


def fast_results(quick=True):
    """Results from the two cheapest real benchmarks (milliseconds)."""
    return prof.run_benchmarks(
        names=["sampling/centered_l2", "obs/metrics_merge"],
        quick=quick, measure_memory=False)


class TestGate:
    def test_fresh_baseline_passes(self):
        results = fast_results()
        baseline = prof.make_baseline(results, preset="quick")
        assert prof.check_results(results, baseline, preset="quick") == []

    def test_tightened_baseline_fails(self):
        results = fast_results()
        baseline = prof.make_baseline(results, preset="quick")
        entry = baseline["presets"]["quick"]["benchmarks"][results[0].name]
        entry["wall_s"] = results[0].wall_s / 1e6
        entry["tolerance"] = 1.0
        violations = prof.check_results(results, baseline, preset="quick")
        assert len(violations) == 1
        assert "regression" in violations[0]
        assert results[0].name in violations[0]

    def test_work_divergence_fails(self):
        results = fast_results()
        baseline = prof.make_baseline(results, preset="quick")
        entry = baseline["presets"]["quick"]["benchmarks"][results[0].name]
        entry["work"] = dict(entry["work"], points=999)
        violations = prof.check_results(results, baseline, preset="quick")
        assert any("work metadata diverged" in v for v in violations)

    def test_missing_entry_and_missing_preset_fail(self):
        results = fast_results()
        baseline = prof.make_baseline(results[:1], preset="quick")
        violations = prof.check_results(results, baseline, preset="quick")
        assert any("no baseline entry" in v for v in violations)
        missing = prof.check_results(results, baseline, preset="full")
        assert len(missing) == 1 and "no 'full' preset" in missing[0]

    def test_update_preserves_other_preset_and_tolerances(self):
        results = fast_results()
        quick_doc = prof.make_baseline(results, preset="quick")
        quick_doc["presets"]["quick"]["benchmarks"][
            results[0].name]["tolerance"] = 42.0
        merged = prof.make_baseline(results, preset="full",
                                    previous=quick_doc)
        assert set(merged["presets"]) == {"quick", "full"}
        again = prof.make_baseline(results, preset="quick", previous=merged)
        assert again["presets"]["quick"]["benchmarks"][
            results[0].name]["tolerance"] == 42.0

    def test_baseline_round_trip_and_schema_check(self, tmp_path):
        results = fast_results()
        baseline = prof.make_baseline(results, preset="quick")
        path = prof.write_baseline(baseline, tmp_path / "baseline.json")
        assert prof.load_baseline(path) == baseline
        path.write_text(json.dumps({"schema": 99}))
        with pytest.raises(ValueError, match="schema"):
            prof.load_baseline(path)

    def test_results_document_and_bench_file(self, tmp_path):
        results = fast_results()
        doc = prof.results_document(results, preset="quick", run_id="TESTRUN")
        assert doc["schema"] == prof.BENCH_SCHEMA_VERSION
        assert doc["preset"] == "quick"
        assert doc["version"] == obs.package_version()
        assert "git_sha" in doc and "platform" in doc and "python" in doc
        assert len(doc["results"]) == 2
        for row in doc["results"]:
            assert {"name", "wall_s", "cpu_s", "mem_peak_kb",
                    "work", "tolerance"} <= set(row)
        path = prof.write_results(doc, tmp_path)
        assert path.name == "BENCH_TESTRUN.json"
        assert json.loads(path.read_text())["run"] == "TESTRUN"


class TestBenchCLI:
    def test_bench_quick_writes_schema_versioned_results(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        code = cli_main(["bench", "--quick", "--no-memory"])
        assert code == 0
        (bench_file,) = tmp_path.glob("BENCH_*.json")
        doc = json.loads(bench_file.read_text())
        assert doc["schema"] == prof.BENCH_SCHEMA_VERSION
        assert doc["preset"] == "quick"
        assert len(doc["results"]) >= 6
        works = {r["name"]: r["work"] for r in doc["results"]}
        assert works["sim/end_to_end"]["instructions"] > 0

    def test_bench_check_passes_against_committed_baseline(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        code = cli_main(["bench", "--quick", "--no-memory", "--check"])
        assert code == 0
        assert "perf gate passed" in capsys.readouterr().out

    def test_bench_check_fails_when_baseline_tightened(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        baseline = prof.load_baseline(prof.DEFAULT_BASELINE_PATH)
        for entry in baseline["presets"]["quick"]["benchmarks"].values():
            entry["wall_s"] = 1e-12
            entry["tolerance"] = 1.0
        tightened = prof.write_baseline(baseline, tmp_path / "tight.json")
        code = cli_main([
            "bench", "--quick", "--no-memory", "--check",
            "--baseline", str(tightened),
            "sampling/centered_l2", "obs/metrics_merge",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "regression" in out

    def test_bench_update_baseline_then_check(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        target = tmp_path / "baseline.json"
        code = cli_main([
            "bench", "--quick", "--no-memory", "--update-baseline",
            "--baseline", str(target), "obs/metrics_merge",
        ])
        assert code == 0 and target.exists()
        code = cli_main([
            "bench", "--quick", "--no-memory", "--check",
            "--baseline", str(target), "obs/metrics_merge",
        ])
        assert code == 0

    def test_bench_unknown_name_exits_with_message(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["bench", "no/such/bench"])
        assert "no/such/bench" in str(excinfo.value.code)

    def test_bench_list(self, capsys):
        assert cli_main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "sim/end_to_end" in out and "tolerance" in out


class TestTraceCLI:
    def _write(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.write_trace(sample_trace(), path, header={"command": "test"})
        return path

    def test_profile_table(self, tmp_path, capsys):
        path = self._write(tmp_path)
        assert cli_main(["trace", "profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "build;simulate" in out

    def test_profile_folded_round_trips(self, tmp_path, capsys):
        path = self._write(tmp_path)
        assert cli_main(["trace", "profile", str(path), "--folded"]) == 0
        parsed = prof.parse_folded(capsys.readouterr().out)
        assert ("build", "simulate", "cache") in parsed

    def test_summary_json(self, tmp_path, capsys):
        path = self._write(tmp_path)
        assert cli_main(["trace", "summary", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "test"
        assert any(row["name"] == "simulate" for row in doc["spans"])

    @pytest.mark.parametrize("command", ["summary", "profile"])
    def test_missing_file_exits_one_line(self, tmp_path, command):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["trace", command, str(tmp_path / "nope.jsonl")])
        message = str(excinfo.value.code)
        assert "cannot read trace" in message and "\n" not in message

    @pytest.mark.parametrize("command", ["summary", "profile"])
    def test_empty_file_exits_one_line(self, tmp_path, command):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["trace", command, str(path)])
        assert "empty trace" in str(excinfo.value.code)

    def test_truncated_trailing_line_is_skipped(self, tmp_path, capsys):
        path = self._write(tmp_path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "span", "id": 99, "na')  # killed mid-write
        assert cli_main(["trace", "summary", str(path)]) == 0
        captured = capsys.readouterr()
        assert "build" in captured.out
        assert "skipped 1 partial trailing line" in captured.err

    def test_mid_file_corruption_still_errors(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('not json\n{"type": "trace", "version": 1}\n')
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["trace", "summary", str(path)])
        assert "malformed trace" in str(excinfo.value.code)

    def test_read_trace_lenient_counts_skipped(self, tmp_path):
        path = self._write(tmp_path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{partial")
        trace = obs.read_trace(path, strict=False)
        assert trace.skipped_lines == 1
        assert trace.roots  # the intact content was all recovered
        with pytest.raises(ValueError):
            obs.read_trace(path)  # strict default still refuses


class TestRecentFailuresBounds:
    def test_bounded_at_sixteen_newest_last(self):
        for i in range(20):
            obs.record_failure(f"stage-{i}", ValueError(f"err-{i}"))
        failures = obs.recent_failures()
        assert len(failures) == 16
        assert failures[-1]["stage"] == "stage-19"
        assert failures[0]["stage"] == "stage-4"  # oldest four evicted
        # The returned list is a copy; mutating it cannot corrupt the log.
        failures.clear()
        assert len(obs.recent_failures()) == 16


def grid_points(space, lats):
    base = {
        "pipe_depth": 12, "rob_size": 64, "iq_frac": 0.5, "lsq_frac": 0.5,
        "l2_size_kb": 1024, "l2_lat": 12, "il1_size_kb": 32,
        "dl1_size_kb": 32, "dl1_lat": 2,
    }
    rows = []
    for lat in lats:
        point = dict(base, l2_lat=lat)
        rows.append(space.as_array(point))
    return np.vstack(rows)


class TestWorkerAdoptionUnderBench:
    def test_parallel_spans_land_once_and_metrics_merge_exactly(
            self, tmp_path):
        space = paper_design_space()
        grid = grid_points(space, (12, 18, 24, 30))
        # Serial reference: what the counters must total regardless of jobs.
        serial = SimulationRunner("mcf", trace_length=TRACE_LENGTH,
                                  cache_dir=tmp_path / "serial")
        with obs.collecting() as serial_col:
            expected = serial.cpi(grid)
        parallel = SimulationRunner("mcf", trace_length=TRACE_LENGTH,
                                    cache_dir=tmp_path / "parallel", jobs=2)
        with obs.collecting() as col:
            with obs.span("bench/sim_grid"):  # an active bench-style span
                got = parallel.cpi(grid)
        assert np.array_equal(expected, got)
        spans = [s for root in col.roots for s in root.walk()]
        sim_spans = [s for s in spans if s.name == "simulate"]
        # Exactly one adopted span per uncached point - none lost, none
        # double-adopted - and all grafted under the open bench span.
        assert len(sim_spans) == 4
        assert all(s.attrs.get("worker") for s in sim_spans)
        (bench_root,) = [s for s in spans if s.name == "bench/sim_grid"]
        under_bench = [s for s in bench_root.walk() if s.name == "simulate"]
        assert len(under_bench) == 4
        # Worker metrics merged exactly: identical totals to the serial run.
        for counter in ("sim/instructions", "sim/cycles"):
            assert col.metrics.counter(counter) == pytest.approx(
                serial_col.metrics.counter(counter))
        assert parallel.simulations_run == serial.simulations_run == 4
