"""Tests for the model registry, model cards, and prediction provenance.

Covers the registry contract end to end: content-addressed registration
with lineage versions, byte-determinism of the index and cards under a
pinned clock, the observer-only guarantee (registering perturbs nothing),
honest uncertainty (held-out coverage and extrapolation flags), the
probe-grid drift gate, and the ``repro models`` CLI including the build
auto-registration path.
"""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.models import registry as reg
from repro.models.base import Uncertainty
from repro.models.linear import LinearInteractionModel
from repro.models.mlp import MLPModel
from repro.models.rbf import RBFNetwork, build_rbf_from_tree
from repro.models.spline import SplineModel
from repro.models.tree import RegressionTree
from repro.obs import modelcard

PINNED_NOW = "2026-08-08T00:00:00+00:00"


def target(x):
    return 1.0 + np.sin(3 * x[:, 0]) + 0.5 * x[:, 1] * x[:, 2]


@pytest.fixture
def fitted(rng):
    x = rng.random((60, 3))
    y = target(x) + rng.normal(0.0, 0.05, len(x))
    net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
    return net, x, y


def make_registry(tmp_path, name="registry"):
    return reg.ModelRegistry(tmp_path / name)


def register(registry, model, **overrides):
    kwargs = dict(benchmark="mcf", sample_size=60, seed=42,
                  design_space_hash="abcd" * 4, git_sha="f" * 8,
                  parameter_names=["a", "b", "c"], now=PINNED_NOW)
    kwargs.update(overrides)
    return registry.register(model, **kwargs)


class TestContentAddressing:
    def test_register_load_round_trip_bitwise(self, fitted, tmp_path, rng):
        net, x, y = fitted
        registry = make_registry(tmp_path)
        entry = register(registry, net)
        assert entry.sha == reg.content_hash(net)
        assert entry.version == 1
        loaded, names, _ = registry.load(entry)
        assert names == ["a", "b", "c"]
        xt = rng.random((20, 3))
        np.testing.assert_array_equal(loaded.predict(xt), net.predict(xt))

    def test_identical_refit_shares_sha_new_version(self, fitted, tmp_path):
        net, x, y = fitted
        registry = make_registry(tmp_path)
        first = register(registry, net)
        second = register(registry, net)
        assert second.sha == first.sha
        assert (first.version, second.version) == (1, 2)
        assert registry.predecessor(second) == first
        assert registry.predecessor(first) is None

    def test_lineage_versions_are_independent(self, fitted, tmp_path):
        net, x, y = fitted
        registry = make_registry(tmp_path)
        register(registry, net)
        other = register(registry, net, benchmark="gcc")
        assert other.version == 1  # its own lineage starts at v1

    def test_find_by_sha_prefix_and_benchmark(self, fitted, tmp_path):
        net, x, y = fitted
        registry = make_registry(tmp_path)
        entry = register(registry, net)
        assert registry.find(entry.sha[:6]) == entry
        assert registry.find("mcf") == entry
        assert registry.find("nope") is None

    def test_tampered_artifact_fails_hash_verification(self, fitted,
                                                       tmp_path):
        net, x, y = fitted
        registry = make_registry(tmp_path)
        entry = register(registry, net)
        path = registry.artifact_path(entry.sha)
        payload = json.loads(path.read_text())
        payload["model"]["weights"][0] += 0.5
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="hash"):
            registry.load(entry)


class TestByteDeterminism:
    def test_index_and_card_bytes_reproduce(self, fitted, tmp_path):
        net, x, y = fitted
        net.calibrate(x, y)
        card = modelcard.build_card(
            family="rbf", benchmark="mcf", sample_size=60, seed=42,
            diagnostics=net.diagnostics(),
            uncertainty=net.uncertainty.as_dict(),
            git="f" * 8, created=PINNED_NOW)
        blobs = []
        for name in ("first", "second"):
            registry = make_registry(tmp_path, name)
            entry = register(registry, net, card=card)
            blobs.append((
                registry.index_path.read_bytes(),
                registry.card_path(entry.sha).read_bytes(),
                registry.artifact_path(entry.sha).read_bytes(),
            ))
        assert blobs[0] == blobs[1]

    def test_card_json_sorted_and_strict(self, fitted):
        net, x, y = fitted
        card = modelcard.build_card(
            family="rbf", benchmark="mcf", sample_size=60, seed=42,
            selection={"trajectory": [{"criterion_value": float("inf")}]},
            git="f" * 8, created=PINNED_NOW)
        text = modelcard.card_to_json(card)
        parsed = json.loads(text)  # allow_nan=False already enforced strict
        assert list(parsed) == sorted(parsed)
        assert parsed["selection"]["trajectory"][0]["criterion_value"] is None

    def test_created_timestamp_honours_source_date_epoch(self, monkeypatch):
        monkeypatch.setenv("SOURCE_DATE_EPOCH", "1754000000")
        stamp = modelcard.created_timestamp()
        assert stamp == modelcard.created_timestamp()
        assert stamp.startswith("2025-")


class TestObserverOnly:
    def test_registering_perturbs_nothing(self, fitted, tmp_path, rng):
        net, x, y = fitted
        xt = rng.random((40, 3))
        before = net.predict(xt).copy()
        net.calibrate(x, y)
        register(make_registry(tmp_path), net)
        np.testing.assert_array_equal(net.predict(xt), before)

    def test_provenance_values_match_predict_bitwise(self, fitted, rng):
        net, x, y = fitted
        net.calibrate(x, y)
        xt = rng.random((40, 3))
        prov = net.predict_with_provenance(xt)
        np.testing.assert_array_equal(prov.values, net.predict(xt))


class TestUncertainty:
    def test_held_out_coverage_within_tolerance(self, fitted, rng):
        # Nominal q10-q90 band: held-out coverage should land near 80%.
        net, x, y = fitted
        net.calibrate(x, y)
        xt = rng.random((200, 3))
        yt = target(xt) + rng.normal(0.0, 0.05, len(xt))
        prov = net.predict_with_provenance(xt)
        in_hull = ~prov.extrapolated
        assert in_hull.sum() >= 150
        covered = (yt >= prov.lower) & (yt <= prov.upper)
        coverage = covered[in_hull].mean()
        assert 0.55 <= coverage <= 0.98

    def test_band_is_ordered_and_finite(self, fitted, rng):
        net, x, y = fitted
        net.calibrate(x, y)
        prov = net.predict_with_provenance(rng.random((50, 3)))
        assert np.all(prov.lower <= prov.values)
        assert np.all(prov.values <= prov.upper)
        assert np.all(np.isfinite(prov.lower) & np.isfinite(prov.upper))

    def test_extrapolation_flags_fire_out_of_hull(self, fitted):
        net, x, y = fitted
        net.calibrate(x, y)
        far = np.full((5, 3), 2.5)
        assert net.predict_with_provenance(far).extrapolated.all()
        near = x[:10]
        assert not net.predict_with_provenance(near).extrapolated.any()

    def test_uncalibrated_provenance_raises(self, fitted):
        net, x, y = fitted
        with pytest.raises(RuntimeError, match="calibrate"):
            net.predict_with_provenance(x[:3])

    def test_rbf_calibration_is_loo_quantile(self, fitted):
        net, x, y = fitted
        net.calibrate(x, y)
        unc = net.uncertainty
        assert unc.kind == "loo-quantile"
        q10, q50, q90 = unc.residual_quantiles
        assert q10 <= q50 <= q90
        assert unc.center_distance_cap is not None

    def test_uncertainty_dict_round_trip(self, fitted):
        net, x, y = fitted
        net.calibrate(x, y)
        unc = net.uncertainty
        assert Uncertainty.from_dict(unc.as_dict()) == unc


class TestDiagnostics:
    def test_all_families_report_family_and_shape(self, rng):
        x = rng.random((50, 3))
        y = target(x)
        net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        models = {
            "rbf": net,
            "linear": LinearInteractionModel.fit(x, y),
            "spline": SplineModel.fit(x, y, max_terms=12),
            "mlp": MLPModel.fit(x, y, hidden=(6,), epochs=200, seed=1),
            "tree": RegressionTree(x, y, p_min=2),
        }
        for name, model in models.items():
            diag = model.diagnostics()
            assert diag["family"] == name
            assert diag["dimension"] == 3
            assert json.dumps(diag)  # JSON-ready for the card


class TestDriftGate:
    def test_clean_refit_passes(self, fitted, rng):
        net, x, y = fitted
        refit, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        report = reg.drift_report(reg.probe_predictions(net),
                                  reg.probe_predictions(refit))
        assert report["score"] == 0.0 and not report["drifted"]

    def test_injected_noise_fails(self, fitted, rng):
        net, x, y = fitted
        noisy = RBFNetwork(net.centers, net.radii,
                           net.weights + rng.normal(0.0, 2.0,
                                                    net.weights.shape))
        report = reg.drift_report(reg.probe_predictions(net),
                                  reg.probe_predictions(noisy))
        assert report["drifted"] and report["score"] > reg.DRIFT_TOLERANCE

    def test_probe_grid_is_seeded_and_stable(self):
        a = reg.probe_grid(3)
        b = reg.probe_grid(3)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (reg.PROBE_POINTS, 3)

    def test_baseline_document_round_trip(self, fitted, tmp_path):
        net, x, y = fitted
        doc = reg.baseline_document(net, benchmark="mcf", sample_size=60,
                                    seed=42)
        path = reg.write_baseline(doc, tmp_path / "baseline.json")
        loaded = reg.read_baseline(path)
        report = reg.check_against_baseline(net, loaded)
        assert not report["drifted"] and report["score"] == 0.0
        assert report["baseline_sha"] == report["candidate_sha"]

    def test_corrupt_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            reg.read_baseline(path)


class TestModelsCLI:
    @pytest.fixture
    def built(self, tmp_path, monkeypatch):
        """One registered ``repro build`` in an isolated results tree."""
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("SOURCE_DATE_EPOCH", "1754000000")
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        code = cli_main([
            "build", "--benchmark", "mcf", "--sample-size", "20",
            "--test-points", "8", "--trace-length", "2048",
        ])
        assert code == 0
        return tmp_path

    def test_build_registers_and_records_in_ledger(self, built):
        from repro import obs

        registry = reg.ModelRegistry(built / "results" / "models")
        entries = registry.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert (entry.benchmark, entry.family) == ("mcf", "rbf")
        assert entry.sample_size == 20 and entry.version == 1
        card = registry.card(entry)
        assert card["seed"] == 42
        assert card["errors"]["holdout"]["count"] == 8
        assert card["cost"]["simulations_run"] == 28.0  # registration adds 0
        assert card["selection"]["trajectory"]
        assert card["uncertainty"]["kind"] == "loo-quantile"
        manifest = obs.read_manifest(built / "results" / "manifest.json")
        assert manifest["metrics"]["counters"]["simulations_run"] == 28.0
        runs = (built / "results" / "history" /
                "runs.jsonl").read_text().splitlines()
        record = json.loads(runs[-1])
        assert record["model_sha"] == entry.sha
        assert record["model_version"] == 1
        assert record["model_family"] == "rbf"

    def test_models_list_show_card(self, built, capsys):
        assert cli_main(["models", "list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "rbf" in out
        assert cli_main(["models", "show"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["benchmark"] == "mcf"
        assert cli_main(["models", "card"]) == 0
        assert "model card" in capsys.readouterr().out
        assert cli_main(["models", "card", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["family"] == "rbf"

    def test_check_trivial_then_clean_then_drift(self, built, capsys, rng):
        # v1 alone: trivially passes (no predecessor).
        assert cli_main(["models", "check"]) == 0
        assert "trivially" in capsys.readouterr().out
        registry = reg.ModelRegistry(built / "results" / "models")
        entry = registry.latest()
        model, names, _ = registry.load(entry)
        # Identical re-registration: clean pass against the predecessor.
        registry.register(model, benchmark=entry.benchmark,
                          sample_size=entry.sample_size, seed=entry.seed,
                          parameter_names=names, now=PINNED_NOW)
        assert cli_main(["models", "check"]) == 0
        assert "passed" in capsys.readouterr().out
        # Degraded fit: injected weight noise must trip the gate.
        noisy = RBFNetwork(model.centers, model.radii,
                           model.weights + rng.normal(0.0, 2.0,
                                                      model.weights.shape))
        registry.register(noisy, benchmark=entry.benchmark,
                          sample_size=entry.sample_size, seed=entry.seed,
                          parameter_names=names, now=PINNED_NOW)
        assert cli_main(["models", "check"]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_check_against_written_baseline(self, built, tmp_path, capsys):
        baseline = tmp_path / "probe-baseline.json"
        assert cli_main(["models", "check",
                         "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert cli_main(["models", "check", "--baseline",
                         str(baseline)]) == 0
        assert "passed" in capsys.readouterr().out

    def test_no_register_skips_registry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        code = cli_main([
            "build", "--benchmark", "mcf", "--sample-size", "20",
            "--test-points", "8", "--trace-length", "2048", "--no-register",
        ])
        assert code == 0
        assert not (tmp_path / "results" / "models" / "index.jsonl").exists()

    def test_empty_registry_is_one_line_exit(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["models", "list"])
        assert "empty model registry" in str(excinfo.value)
