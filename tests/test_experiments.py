"""Tests for the experiment registry and render plumbing.

Heavy experiment *data* generation is exercised by the benchmark harness
(``benchmarks/``); here the registry completeness and all the render/
summary logic are tested on small or synthetic inputs.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.analysis.trends import TrendGrid
from repro.core.validation import ErrorReport
from repro.experiments import (
    fig1_response_surface,
    fig2_discrepancy,
    fig4_error_vs_sample_size,
    fig7_linear_vs_rbf,
    table3_error_diagnostics,
    table4_rbf_diagnostics,
)
from repro.experiments.registry import EXPERIMENTS
from repro.models.rbf import RBFBuildInfo

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestRegistry:
    def test_every_paper_exhibit_present(self):
        exhibits = {e.exhibit for e in EXPERIMENTS.values()}
        # The paper's ten exhibits plus the repo's own CPI-stacks exhibit.
        assert exhibits == {
            "Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
            "Figure 6", "Figure 7", "Table 3", "Table 4", "Table 5",
            "CPI stacks",
        }

    def test_bench_files_exist(self):
        for exp in EXPERIMENTS.values():
            assert (REPO_ROOT / exp.bench).exists(), exp.bench

    def test_modules_importable(self):
        import importlib

        for exp in EXPERIMENTS.values():
            module = importlib.import_module(exp.module)
            assert hasattr(module, "run")
            assert hasattr(module, "render")


class TestRenderers:
    def test_fig1_render(self):
        grid = TrendGrid(
            param_x="l2_lat", param_y="il1_size_kb",
            x_values=[5.0, 20.0], y_values=[8.0, 64.0],
            simulated=np.array([[1.0, 2.0], [1.0, 1.4]]),
        )
        result = fig1_response_surface.Fig1Result(
            grid=grid, l2_lat_cost_small_il1=1.0,
            l2_lat_cost_large_il1=0.4, interaction_ratio=2.5,
        )
        text = fig1_response_surface.render(result)
        assert "Figure 1" in text
        assert "2.50x" in text

    def test_fig2_render(self):
        result = fig2_discrepancy.Fig2Result(
            curve=[(30, 0.5), (90, 0.38), (200, 0.35)], knee=90.0,
        )
        text = fig2_discrepancy.render(result)
        assert "knee" in text
        assert "~90" in text

    def test_fig4_render_and_taper(self):
        series = {
            "mcf": [
                (30, ErrorReport(6.0, 20.0, 4.0, 50)),
                (90, ErrorReport(3.0, 10.0, 2.0, 50)),
                (200, ErrorReport(2.8, 9.0, 2.0, 50)),
            ]
        }
        result = fig4_error_vs_sample_size.Fig4Result(series=series)
        pre, post = fig4_error_vs_sample_size.tapering(result, "mcf")
        assert pre > post  # improvement tapers
        assert "mcf" in fig4_error_vs_sample_size.render(result)

    def test_table3_averages(self):
        reports = {
            "mcf": ErrorReport(2.0, 10.0, 1.5, 50),
            "twolf": ErrorReport(4.0, 12.0, 2.0, 50),
        }
        result = table3_error_diagnostics.Table3Result(reports=reports, sample_size=200)
        assert result.average_mean_error == pytest.approx(3.0)
        assert result.worst_max_error == pytest.approx(12.0)
        assert "Average" in table3_error_diagnostics.render(result)

    def test_table4_centers_check(self):
        def info(m):
            return RBFBuildInfo(
                p_min=1, alpha=6.0, criterion_name="aicc", criterion_value=0.0,
                sse=1.0, num_candidates=50, num_centers=m, tree_depth=5,
            )

        good = table4_rbf_diagnostics.Table4Result("mcf", [(30, info(12)), (200, info(70))])
        assert good.centers_below_half()
        bad = table4_rbf_diagnostics.Table4Result("mcf", [(30, info(20))])
        assert not bad.centers_below_half()
        assert "Table 4" in table4_rbf_diagnostics.render(good)

    def test_fig7_summaries(self):
        series = {"mcf": [(30, 8.0, 4.0), (200, 6.5, 2.1)]}
        result = fig7_linear_vs_rbf.Fig7Result(series=series)
        assert result.rbf_wins("mcf") == 2
        assert result.final_gap("mcf") == pytest.approx(6.5 / 2.1)
        assert "linear" in fig7_linear_vs_rbf.render(result).lower()


class TestSummary:
    def test_collect_reports_missing(self, tmp_path):
        from repro.experiments.summary import collect

        sections, missing = collect(tmp_path)
        assert sections == []
        assert len(missing) == len(EXPERIMENTS)

    def test_write_summary_roundtrip(self, tmp_path):
        from repro.experiments.summary import write_summary

        (tmp_path / "table3_error_diagnostics.txt").write_text("T3\n")
        path = write_summary(tmp_path)
        text = path.read_text()
        assert "T3" in text
        assert "exhibits present: 1" in text
