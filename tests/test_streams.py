"""Tests for the address-stream primitives."""

import numpy as np
import pytest

from repro.workloads.streams import (
    ChaseStream,
    HotStream,
    StackStream,
    StridedStream,
)


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestStackStream:
    def test_within_region_and_aligned(self, rng):
        s = StackStream(4096)
        for _ in range(200):
            a = s.next(rng)
            assert s.base <= a < s.base + 4096
            assert a % 8 == 0

    def test_concentrated_near_base(self, rng):
        s = StackStream(4096)
        offsets = np.array([s.next(rng) - s.base for _ in range(2000)])
        # Squared-uniform: median well below the midpoint.
        assert np.median(offsets) < 2048 * 0.6

    def test_too_small(self):
        with pytest.raises(ValueError):
            StackStream(4)


class TestHotStream:
    def test_within_region(self, rng):
        s = HotStream(32 * 1024)
        offsets = np.array([s.next(rng) - s.base for _ in range(3000)])
        assert offsets.min() >= 0 and offsets.max() < 32 * 1024

    def test_heavy_core(self, rng):
        s = HotStream(32 * 1024)
        offsets = np.array([s.next(rng) - s.base for _ in range(5000)])
        # Fourth-power law: half the mass in the lowest ~6% of the region.
        core_fraction = np.mean(offsets < 32 * 1024 * 0.0625)
        assert core_fraction > 0.4


class TestStridedStream:
    def test_sequential_within_stream(self, rng):
        s = StridedStream(1 << 20, stride=16, num_streams=2, segment_bytes=4096)
        a1 = s.next(rng)  # stream 0
        s.next(rng)  # stream 1
        a2 = s.next(rng)  # stream 0 again
        assert a2 - a1 == 16

    def test_wraps_within_segment(self, rng):
        seg = 256
        s = StridedStream(1 << 20, stride=64, num_streams=1, segment_bytes=seg)
        addrs = [s.next(rng) for _ in range(8)]
        assert addrs[4] == addrs[0]  # wrapped after seg/stride = 4 accesses

    def test_streams_disjoint_origins(self, rng):
        s = StridedStream(1 << 20, stride=16, num_streams=4, segment_bytes=4096)
        first_round = [s.next(rng) for _ in range(4)]
        assert len(set(first_round)) == 4

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            StridedStream(32, stride=16, num_streams=4)
        with pytest.raises(ValueError):
            StridedStream(1 << 20, stride=64, num_streams=1, segment_bytes=32)


class TestChaseStream:
    def test_within_region(self, rng):
        s = ChaseStream(1 << 20)
        for _ in range(500):
            a = s.next(rng)
            assert s.base <= a < s.base + (1 << 20)

    def test_produces_reuse(self, rng):
        s = ChaseStream(1 << 20, reuse_frac=0.8, min_distance=8)
        addrs = [s.next(rng) for _ in range(3000)]
        unique_fraction = len(set(addrs)) / len(addrs)
        # With 80% reuse the unique fraction must be far below 1.
        assert unique_fraction < 0.5

    def test_no_reuse_mode(self, rng):
        s = ChaseStream(1 << 26, reuse_frac=0.0)
        addrs = [s.next(rng) for _ in range(1000)]
        assert len(set(addrs)) > 990

    def test_reuse_distances_span_octaves(self, rng):
        s = ChaseStream(1 << 22, reuse_frac=0.7, min_distance=8)
        addrs = [s.next(rng) for _ in range(8000)]
        last_seen = {}
        distances = []
        for i, a in enumerate(addrs):
            if a in last_seen:
                distances.append(i - last_seen[a])
            last_seen[a] = i
        distances = np.array(distances)
        # Reuses occur both at short (< 64) and long (> 1024) distances.
        assert (distances < 64).sum() > 10
        assert (distances > 1024).sum() > 10

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ChaseStream(64)
        with pytest.raises(ValueError):
            ChaseStream(1 << 20, reuse_frac=1.5)
