"""Tests for the statistical-simulation baseline."""

import numpy as np
import pytest

from repro.simulator import isa
from repro.simulator.config import ProcessorConfig
from repro.simulator.simulator import simulate
from repro.statsim import StatisticalSimulator, profile_trace, synthesize_trace
from repro.workloads.characterize import characterize
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import PROFILES

SOURCE = generate_trace(PROFILES["twolf"], 12000, seed=8)


@pytest.fixture(scope="module")
def stat_profile():
    return profile_trace(SOURCE)


class TestProfile:
    def test_mix_measured(self, stat_profile):
        assert isa.LOAD in stat_profile.op_mix
        assert abs(sum(stat_profile.op_mix.values()) - 1.0) < 1e-9

    def test_block_lengths_probabilities(self, stat_profile):
        total = sum(p for _, p in stat_profile.block_lengths)
        assert total == pytest.approx(1.0)
        assert all(length >= 1 for length, _ in stat_profile.block_lengths)

    def test_reuse_octaves_include_cold_bucket(self, stat_profile):
        bounds = [b for b, _ in stat_profile.reuse_octaves]
        assert 0 in bounds  # compulsory share
        total = sum(p for _, p in stat_profile.reuse_octaves)
        assert total == pytest.approx(1.0)

    def test_branch_statistics(self, stat_profile):
        assert 0.5 <= stat_profile.branch_bias <= 1.0
        assert 0.0 <= stat_profile.taken_frac <= 1.0
        assert stat_profile.num_branch_sites > 10

    def test_empty_trace_rejected(self):
        from repro.simulator.trace import empty_trace

        with pytest.raises(ValueError):
            profile_trace(empty_trace())


class TestSynthesis:
    def test_length_and_validity(self, stat_profile):
        synth = synthesize_trace(stat_profile, 5000, seed=1)
        assert len(synth) == 5000
        synth.validate()

    def test_deterministic(self, stat_profile):
        a = synthesize_trace(stat_profile, 3000, seed=2)
        b = synthesize_trace(stat_profile, 3000, seed=2)
        np.testing.assert_array_equal(a.addr, b.addr)

    def test_mix_matches_source(self, stat_profile):
        synth = synthesize_trace(stat_profile, 8000, seed=3)
        src_char = characterize(SOURCE)
        syn_char = characterize(synth)
        assert syn_char.memory_fraction() == pytest.approx(
            src_char.memory_fraction(), rel=0.25
        )
        assert syn_char.branch_fraction == pytest.approx(
            src_char.branch_fraction, rel=0.3
        )

    def test_locality_reproduced(self, stat_profile):
        # The synthetic trace must produce a D-L1 miss rate in the same
        # class as the source — the whole point of reuse-distance-driven
        # synthesis.
        synth = synthesize_trace(stat_profile, 8000, seed=4)
        config = ProcessorConfig()
        src = simulate(config, SOURCE)
        syn = simulate(config, synth)
        assert syn.dl1_miss_rate == pytest.approx(src.dl1_miss_rate, abs=0.12)


class TestEstimator:
    def test_estimates_in_right_class(self):
        estimator = StatisticalSimulator(SOURCE, synthetic_length=6000, seed=5)
        config = ProcessorConfig()
        true_cpi = simulate(config, SOURCE).cpi
        est_cpi = estimator.cpi_config(config)
        assert est_cpi == pytest.approx(true_cpi, rel=0.5)

    def test_tracks_latency_trend(self):
        estimator = StatisticalSimulator(SOURCE, synthetic_length=6000, seed=5)
        fast = estimator.cpi_config(ProcessorConfig(l2_lat=5))
        slow = estimator.cpi_config(ProcessorConfig(l2_lat=20))
        assert slow > fast

    def test_vectorised_interface(self):
        from repro.core.design_space import paper_design_space
        from repro.simulator.config import ProcessorConfig as PC

        estimator = StatisticalSimulator(SOURCE, synthetic_length=4000, seed=6)
        space = paper_design_space()
        point = space.as_array({
            "pipe_depth": 12, "rob_size": 64, "iq_frac": 0.5, "lsq_frac": 0.5,
            "l2_size_kb": 1024, "l2_lat": 12, "il1_size_kb": 32,
            "dl1_size_kb": 32, "dl1_lat": 2,
        })
        other = point.copy()
        other[space.index("l2_lat")] = 20
        values = estimator.cpi(np.vstack([point, other, point]))
        assert values.shape == (3,)
        # Identical resolved configurations are simulated exactly once.
        assert estimator.simulations_run == 2
        assert values[0] == values[2]
        assert values[1] != values[0]
        # The batch path returns the same number as the scalar path.
        resolved = space.resolve(space.as_dict(point))
        assert values[0] == estimator.cpi_config(PC.from_design_point(resolved))

    def test_cpi_batch_matches_per_row(self):
        from repro.core.design_space import paper_design_space

        estimator = StatisticalSimulator(SOURCE, synthetic_length=3000, seed=6)
        space = paper_design_space()
        rng = np.random.default_rng(11)
        unit = space.random_unit_points(4, rng)
        phys = space.decode(unit, num_levels=8)
        batch = estimator.cpi(phys)
        scalar = np.array([
            estimator.cpi_config(
                ProcessorConfig.from_design_point(space.resolve(space.as_dict(row)))
            )
            for row in phys
        ])
        np.testing.assert_array_equal(batch, scalar)

    def test_resolve_batch_matches_scalar(self):
        from repro.core.design_space import paper_design_space

        space = paper_design_space()
        rng = np.random.default_rng(3)
        phys = space.decode(space.random_unit_points(32, rng), num_levels=8)
        batch = space.resolve_batch(phys)
        for row, brow in zip(phys, batch):
            resolved = space.resolve(space.as_dict(row))
            expect = [float(resolved[n]) for n in space.names]
            assert brow.tolist() == expect

    def test_simulations_run_counts_successes_only(self):
        estimator = StatisticalSimulator(SOURCE, synthetic_length=3000, seed=6)
        estimator.trace = None  # force the simulation itself to raise
        with pytest.raises(Exception):
            estimator.cpi_config(ProcessorConfig())
        assert estimator.simulations_run == 0

    def test_accepts_profile_directly(self, stat_profile):
        estimator = StatisticalSimulator(stat_profile, synthetic_length=2000)
        assert estimator.cpi_config(ProcessorConfig()) > 0

    def test_rejects_other_sources(self):
        with pytest.raises(TypeError):
            StatisticalSimulator([1, 2, 3])


class TestLoadChainStatistic:
    def test_mcf_more_chained_than_equake(self):
        mcf = profile_trace(generate_trace(PROFILES["mcf"], 8000, seed=9))
        equake = profile_trace(generate_trace(PROFILES["equake"], 8000, seed=9))
        assert mcf.load_load_dep_frac > equake.load_load_dep_frac

    def test_fraction_in_unit_range(self, stat_profile):
        assert 0.0 <= stat_profile.load_load_dep_frac <= 1.0

    def test_synthesis_reproduces_chaining(self, stat_profile):
        synth = synthesize_trace(stat_profile, 8000, seed=7)
        measured = profile_trace(synth)
        assert measured.load_load_dep_frac == pytest.approx(
            stat_profile.load_load_dep_frac, abs=0.12
        )
