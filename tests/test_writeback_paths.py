"""Tests for the writeback drain paths through the hierarchy."""

import pytest

from repro.simulator.config import ProcessorConfig
from repro.simulator.hierarchy import MemoryHierarchy


def wb_hierarchy(**overrides):
    overrides.setdefault("writeback", True)
    overrides.setdefault("dl1_size_kb", 8)
    overrides.setdefault("l2_size_kb", 256)
    return MemoryHierarchy(ProcessorConfig(**overrides))


class TestDl1Writebacks:
    def test_dirty_victim_reaches_l2(self):
        h = wb_hierarchy()
        cfg = h.config
        # Dirty a line, then sweep the D-L1 to force its eviction.
        h.store(0x1000, 0.0)
        lines = cfg.dl1_size_kb * 1024 // cfg.dl1_line
        t = 10.0
        for i in range(2 * lines):
            t = max(t, h.load(0x800000 + i * cfg.dl1_line, t))
        assert h.dl1.writebacks >= 1
        # The victim line was written into the L2.
        assert h.l2.probe(0x1000)

    def test_clean_lines_do_not_write_back(self):
        h = wb_hierarchy()
        cfg = h.config
        h.load(0x1000, 0.0)  # clean fill
        lines = cfg.dl1_size_kb * 1024 // cfg.dl1_line
        t = 10.0
        for i in range(2 * lines):
            t = max(t, h.load(0x800000 + i * cfg.dl1_line, t))
        # Sweeping loads are clean; only the sweep itself could dirty
        # nothing, so no writebacks from this pattern.
        assert h.dl1.writebacks == 0


class TestL2Writebacks:
    def test_l2_dirty_victim_consumes_memory_bandwidth(self):
        h = wb_hierarchy(l2_size_kb=256, l2_capacity_scale=8)  # tiny L2
        cfg = h.config
        # Dirty many L2 lines via stores, then sweep far beyond L2 capacity.
        t = 0.0
        for i in range(64):
            t = max(t, h.store(0x1000 + i * cfg.l2_line, t))
        requests_before = h.memctrl.requests
        effective_lines = h.l2.size_bytes // cfg.l2_line
        for i in range(3 * effective_lines):
            t = max(t, h.load(0xA00000 + i * cfg.l2_line, t))
        assert h.l2.writebacks >= 1
        # Writebacks issued memory requests beyond the demand fills.
        demand_fills = 3 * effective_lines + h.dl1.writebacks
        assert h.memctrl.requests - requests_before > 0


class TestDisabledPath:
    def test_no_tracking_when_disabled(self):
        h = MemoryHierarchy(ProcessorConfig())
        h.store(0x1000, 0.0)
        assert h.dl1.writebacks == 0
        assert not h.dl1.track_dirty
