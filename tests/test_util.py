"""Tests for utility helpers: seeded RNG derivation and table rendering."""

import numpy as np

from repro.util.rng import derive_seed, make_rng
from repro.util.tables import format_table, render_series


class TestRng:
    def test_derive_seed_stable(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_derive_seed_sensitive_to_labels(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")
        assert derive_seed(42, "a", 1) != derive_seed(42, "a", 2)
        assert derive_seed(41, "a") != derive_seed(42, "a")

    def test_derive_seed_range(self):
        for seed in (0, 1, 2**62):
            value = derive_seed(seed, "x")
            assert 0 <= value < 2**63

    def test_make_rng_reproducible(self):
        a = make_rng(7, "stream").random(5)
        b = make_rng(7, "stream").random(5)
        np.testing.assert_array_equal(a, b)

    def test_make_rng_decorrelated(self):
        a = make_rng(7, "s1").random(5)
        b = make_rng(7, "s2").random(5)
        assert not np.array_equal(a, b)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [("aa", 1), ("b", 22)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len(set(len(l) for l in lines)) <= 2

    def test_format_table_title(self):
        text = format_table(["x"], [(1,)], title="My title")
        assert text.splitlines()[0] == "My title"

    def test_format_table_floats(self):
        text = format_table(["x"], [(1.23456789,)])
        assert "1.235" in text

    def test_render_series_bars(self):
        text = render_series([1, 2, 3], [10.0, 5.0, 1.0])
        lines = text.splitlines()
        assert lines[0].count("#") > lines[-1].count("#")

    def test_render_series_label(self):
        text = render_series([1], [1.0], label="hello")
        assert text.splitlines()[0] == "hello"

    def test_render_series_empty(self):
        assert render_series([], [], label="x") == "x"

    def test_render_series_length_mismatch(self):
        import pytest

        with pytest.raises(ValueError):
            render_series([1, 2], [1.0])

    def test_render_series_constant(self):
        text = render_series([1, 2], [3.0, 3.0])
        assert "#" in text
