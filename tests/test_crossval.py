"""Tests for cross-validation error estimation."""

import numpy as np
import pytest

from repro.core.crossval import kfold_error, loo_rbf_error
from repro.core.validation import prediction_errors
from repro.models.rbf import build_rbf_from_tree


def smooth_response(x):
    return 2.0 + np.sin(3 * x[:, 0]) + x[:, 1] ** 2


@pytest.fixture
def sample(rng):
    x = rng.random((60, 2))
    return x, smooth_response(x)


def rbf_fit(points, responses):
    net, _ = build_rbf_from_tree(points, responses, p_min=2, alpha=4.0)
    return net.predict


class TestKFold:
    def test_basic_estimate(self, sample):
        x, y = sample
        report = kfold_error(x, y, rbf_fit, folds=5, seed=1)
        assert 0 < report.mean < 10.0
        assert report.count == len(x)

    def test_tracks_true_generalisation_error(self, sample, rng):
        x, y = sample
        cv = kfold_error(x, y, rbf_fit, folds=5, seed=1)
        xt = rng.random((100, 2))
        model = rbf_fit(x, y)
        true = prediction_errors(smooth_response(xt), model(xt))
        # The free estimate lands within a small factor of the paid one.
        assert cv.mean < true.mean * 6 + 1.0
        assert true.mean < cv.mean * 6 + 1.0

    def test_deterministic(self, sample):
        x, y = sample
        a = kfold_error(x, y, rbf_fit, folds=4, seed=2)
        b = kfold_error(x, y, rbf_fit, folds=4, seed=2)
        assert a == b

    def test_invalid_folds(self, sample):
        x, y = sample
        with pytest.raises(ValueError):
            kfold_error(x, y, rbf_fit, folds=1)
        with pytest.raises(ValueError):
            kfold_error(x, y, rbf_fit, folds=len(x) + 1)


class TestLooRBF:
    def test_loo_exceeds_training_error(self, sample):
        x, y = sample
        net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        loo, _ = loo_rbf_error(x, y, net)
        train = prediction_errors(y, net.predict(x))
        # Leave-one-out is a (near-)unbiased generalisation estimate; it
        # cannot be optimistic relative to the training fit.
        assert loo.mean >= train.mean * 0.9

    def test_loo_predictions_shape(self, sample):
        x, y = sample
        net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        _, pred = loo_rbf_error(x, y, net)
        assert pred.shape == y.shape

    def test_matches_explicit_refit(self, rng):
        # Cross-check the hat-matrix identity against brute-force holdout
        # refits of the weights on a tiny sample.
        from repro.models.rbf import RBFNetwork, gaussian_design_matrix

        x = rng.random((12, 2))
        y = 1.0 + x[:, 0]
        centers = np.array([[0.25, 0.5], [0.75, 0.5]])
        radii = np.full((2, 2), 0.6)
        ridge = 1e-9
        net = RBFNetwork(centers, radii, np.zeros(2))
        _, loo_pred = loo_rbf_error(x, y, net, ridge=ridge)
        for i in range(len(x)):
            mask = np.arange(len(x)) != i
            a = gaussian_design_matrix(x[mask], centers, radii)
            gram = a.T @ a
            gram[np.diag_indices_from(gram)] += ridge
            w = np.linalg.solve(gram, a.T @ y[mask])
            ai = gaussian_design_matrix(x[i][None, :], centers, radii)
            assert loo_pred[i] == pytest.approx(float((ai @ w)[0]), rel=1e-4)
