"""Tests for the neural-network baseline (Ipek et al. family)."""

import numpy as np
import pytest

from repro.models.mlp import MLPModel


class TestFit:
    def test_learns_linear_function(self, rng):
        x = rng.random((60, 2))
        y = 1.0 + 2.0 * x[:, 0] - x[:, 1]
        model = MLPModel.fit(x, y, hidden=(8,), epochs=2000, seed=1)
        xt = rng.random((30, 2))
        yt = 1.0 + 2.0 * xt[:, 0] - xt[:, 1]
        assert np.abs(model.predict(xt) - yt).mean() < 0.05

    def test_learns_nonlinear_function(self, rng):
        x = rng.random((120, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1] ** 2
        model = MLPModel.fit(x, y, hidden=(16,), epochs=3000, seed=2)
        xt = rng.random((50, 2))
        yt = np.sin(3 * xt[:, 0]) + xt[:, 1] ** 2
        rmse = np.sqrt(np.mean((model.predict(xt) - yt) ** 2))
        assert rmse < 0.12

    def test_deterministic_given_seed(self, rng):
        x = rng.random((40, 2))
        y = x[:, 0]
        a = MLPModel.fit(x, y, epochs=200, seed=7)
        b = MLPModel.fit(x, y, epochs=200, seed=7)
        xt = rng.random((10, 2))
        np.testing.assert_array_equal(a.predict(xt), b.predict(xt))

    def test_seeds_differ(self, rng):
        x = rng.random((40, 2))
        y = x[:, 0]
        a = MLPModel.fit(x, y, epochs=200, seed=7)
        b = MLPModel.fit(x, y, epochs=200, seed=8)
        xt = rng.random((10, 2))
        assert not np.array_equal(a.predict(xt), b.predict(xt))

    def test_two_hidden_layers(self, rng):
        x = rng.random((60, 3))
        y = x[:, 0] * x[:, 1]
        model = MLPModel.fit(x, y, hidden=(12, 6), epochs=1500, seed=3)
        assert len(model.weights) == 3

    def test_target_standardisation_handles_large_scale(self, rng):
        x = rng.random((50, 2))
        y = 1000.0 + 500.0 * x[:, 0]
        model = MLPModel.fit(x, y, epochs=2000, seed=4)
        pred = model.predict(x)
        assert np.abs(pred - y).mean() < 25.0

    def test_constant_target(self, rng):
        x = rng.random((20, 2))
        model = MLPModel.fit(x, np.full(20, 3.0), epochs=200, seed=5)
        assert model.predict(x) == pytest.approx(3.0, abs=0.1)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            MLPModel.fit(rng.random((10, 2)), np.zeros(9))
        with pytest.raises(ValueError):
            MLPModel.fit(rng.random((1, 2)), np.zeros(1))

    def test_dimension_check(self, rng):
        model = MLPModel.fit(rng.random((20, 3)), np.zeros(20), epochs=50)
        with pytest.raises(ValueError):
            model.predict(rng.random((5, 2)))

    def test_repr(self, rng):
        model = MLPModel.fit(rng.random((20, 3)), np.zeros(20), epochs=50,
                             hidden=(8,))
        assert "MLPModel" in repr(model)
