"""Tests for the regression-tree construction (paper Sec. 2.4)."""

import numpy as np
import pytest

from repro.models.tree import RegressionTree


def step_sample():
    """A 1-D step function: y = 0 below 0.5, y = 1 above."""
    x = np.linspace(0.05, 0.95, 10)[:, None]
    y = (x[:, 0] > 0.5).astype(float)
    return x, y


class TestConstruction:
    def test_first_split_finds_step(self):
        x, y = step_sample()
        tree = RegressionTree(x, y, p_min=5)
        assert tree.root.split is not None
        assert tree.root.split.dimension == 0
        assert 0.4 < tree.root.split.value < 0.6

    def test_split_dimension_prefers_informative_axis(self, rng):
        # Column 0 is pure noise, column 1 carries a step.
        x = rng.random((40, 2))
        y = (x[:, 1] > 0.5).astype(float)
        tree = RegressionTree(x, y, p_min=20)
        assert tree.root.split.dimension == 1

    def test_p_min_stops_splitting(self, rng):
        x = rng.random((32, 2))
        y = rng.random(32)
        tree = RegressionTree(x, y, p_min=8)
        for leaf in tree.leaves():
            assert len(leaf.indices) <= 8

    def test_p_min_one_isolates_points(self, rng):
        x = rng.random((16, 2))
        y = rng.random(16)
        tree = RegressionTree(x, y, p_min=1)
        assert len(tree.leaves()) == 16

    def test_constant_response_never_splits_below_pmin(self):
        # With identical x values no split is possible regardless of y.
        x = np.full((6, 2), 0.5)
        y = np.arange(6.0)
        tree = RegressionTree(x, y, p_min=1)
        assert tree.root.is_leaf

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            RegressionTree(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            RegressionTree(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            RegressionTree(np.zeros((3, 2)), np.zeros(3), p_min=0)


class TestHyperRectangles:
    def test_root_covers_unit_cube(self, rng):
        x = rng.random((20, 3))
        tree = RegressionTree(x, rng.random(20), p_min=5)
        np.testing.assert_array_equal(tree.root.lower, np.zeros(3))
        np.testing.assert_array_equal(tree.root.upper, np.ones(3))

    def test_children_partition_parent(self, rng):
        x = rng.random((30, 2))
        tree = RegressionTree(x, rng.random(30), p_min=5)
        node = tree.root
        assert node.split is not None
        k = node.split.dimension
        assert node.left.upper[k] == pytest.approx(node.split.value)
        assert node.right.lower[k] == pytest.approx(node.split.value)
        # Non-split dimensions are inherited.
        other = 1 - k
        assert node.left.lower[other] == node.lower[other]
        assert node.right.upper[other] == node.upper[other]

    def test_center_and_size(self, rng):
        x = rng.random((10, 2))
        tree = RegressionTree(x, rng.random(10), p_min=10)
        np.testing.assert_allclose(tree.root.center, [0.5, 0.5])
        np.testing.assert_allclose(tree.root.size, [1.0, 1.0])

    def test_every_point_inside_its_leaf(self, rng):
        x = rng.random((40, 3))
        tree = RegressionTree(x, rng.random(40), p_min=4)
        for leaf in tree.leaves():
            pts = x[leaf.indices]
            assert np.all(pts >= leaf.lower - 1e-12)
            assert np.all(pts <= leaf.upper + 1e-12)


class TestPrediction:
    def test_leaf_means(self):
        x, y = step_sample()
        tree = RegressionTree(x, y, p_min=5)
        pred = tree.predict(np.array([[0.1], [0.9]]))
        assert pred[0] == pytest.approx(0.0)
        assert pred[1] == pytest.approx(1.0)

    def test_training_prediction_reduces_sse(self, rng):
        x = rng.random((50, 2))
        y = x[:, 0] ** 2 + rng.normal(scale=0.01, size=50)
        shallow = RegressionTree(x, y, p_min=25)
        deep = RegressionTree(x, y, p_min=2)
        sse_shallow = np.sum((shallow.predict(x) - y) ** 2)
        sse_deep = np.sum((deep.predict(x) - y) ** 2)
        assert sse_deep <= sse_shallow


class TestSplitsOrdering:
    def test_breadth_first_split_depths_nondecreasing(self, rng):
        x = rng.random((60, 3))
        y = x[:, 0] + 2 * x[:, 1] ** 2
        tree = RegressionTree(x, y, p_min=4)
        depths = [s.depth for s in tree.splits()]
        assert depths == sorted(depths)

    def test_most_variation_splits_first(self, rng):
        # Dimension 1 has 10x the effect of dimension 0.
        x = rng.random((80, 2))
        y = 0.2 * x[:, 0] + 4.0 * (x[:, 1] > 0.5)
        tree = RegressionTree(x, y, p_min=10)
        assert tree.splits()[0].dimension == 1

    def test_nodes_breadth_first_root_first(self, rng):
        x = rng.random((20, 2))
        tree = RegressionTree(x, rng.random(20), p_min=5)
        nodes = tree.nodes_breadth_first()
        assert nodes[0] is tree.root
        assert len(nodes) >= len(tree.leaves())

    def test_repr(self, rng):
        x = rng.random((10, 2))
        tree = RegressionTree(x, rng.random(10), p_min=2)
        assert "RegressionTree" in repr(tree)
