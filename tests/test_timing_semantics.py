"""Golden timing tests: exact cycle behaviour of crafted micro-traces.

Where test_ooo_core checks qualitative behaviour, these tests pin down
*exact* timestamp arithmetic for tiny traces, so any change to the timing
semantics is caught at cycle granularity.
"""

import numpy as np
import pytest

from repro.simulator import isa
from repro.simulator.config import ProcessorConfig
from repro.simulator.ooo_core import OutOfOrderCore
from repro.simulator.trace import Trace


def trace_of(rows):
    n = len(rows)
    return Trace(
        op=np.array([r[0] for r in rows], dtype=np.int8),
        src1=np.array([r[1] for r in rows], dtype=np.int32),
        src2=np.array([r[2] for r in rows], dtype=np.int32),
        addr=np.array([r[3] for r in rows], dtype=np.int64),
        pc=np.array([(i * 4) % 64 for i in range(n)], dtype=np.int64) + 0x400000,
        taken=np.array([r[4] for r in rows]),
    )


def timeline(rows, **cfg):
    core = OutOfOrderCore(ProcessorConfig(**cfg))
    core.run(trace_of(rows), collect_timeline=True, warmup=0)
    return core.timeline


ALU = (isa.IALU, 0, 0, 0, False)


class TestFrontEndArithmetic:
    def test_dispatch_is_fetch_plus_front_depth(self):
        tl = timeline([ALU], pipe_depth=12)
        assert tl.dispatch[0] - tl.fetch[0] == ProcessorConfig(pipe_depth=12).front_depth

    def test_fetch_groups_of_width(self):
        tl = timeline([ALU] * 8)
        # Same warmed line: first 4 in cycle f, next 4 in f+1.
        assert tl.fetch[3] == tl.fetch[0]
        assert tl.fetch[4] == tl.fetch[0] + 1

    def test_single_alu_completes_one_cycle_after_issue(self):
        tl = timeline([ALU])
        assert tl.complete[0] == tl.issue[0] + 1

    def test_commit_one_cycle_after_complete(self):
        tl = timeline([ALU])
        assert tl.commit[0] == tl.complete[0] + 1


class TestDependenceArithmetic:
    def test_chain_spacing_exactly_one_cycle(self):
        rows = [ALU] + [(isa.IALU, 1, 0, 0, False)] * 4
        tl = timeline(rows)
        for i in range(1, 5):
            assert tl.complete[i] == tl.complete[i - 1] + 1

    def test_multiply_latency_in_chain(self):
        mul_lat = isa.OP_TIMING[isa.IMULT][0]
        rows = [(isa.IMULT, 0, 0, 0, False), (isa.IALU, 1, 0, 0, False)]
        tl = timeline(rows)
        # The ALU op issues when the multiply completes.
        assert tl.issue[1] == tl.complete[0]
        assert tl.complete[0] - tl.issue[0] == mul_lat

    def test_second_operand_also_waited_on(self):
        rows = [ALU, (isa.IMULT, 0, 0, 0, False), (isa.IALU, 2, 1, 0, False)]
        tl = timeline(rows)
        assert tl.issue[2] >= tl.complete[1]


class TestMemoryArithmetic:
    def test_warm_load_latency_exact(self):
        rows = [(isa.LOAD, 0, 0, 0x2000, False)] * 3
        for lat in (1, 4):
            tl = timeline(rows, dl1_lat=lat)
            # Third access: line warm, no port conflict carryover.
            assert tl.complete[2] - tl.issue[2] == lat

    def test_forwarded_load_is_one_cycle(self):
        rows = [
            (isa.STORE, 0, 0, 0x2000, False),
            (isa.LOAD, 0, 0, 0x2000, False),
        ]
        tl = timeline(rows)
        assert tl.complete[1] - max(tl.issue[1], tl.complete[0]) == 1

    def test_l2_hit_latency_exact(self):
        # Warm the line into L2, evict from dl1, then measure.
        dl1_kb, line = 8, 64
        sweep = [(isa.LOAD, 0, 0, 0x800000 + i * line, False)
                 for i in range(dl1_kb * 1024 // line * 2)]
        rows = ([(isa.LOAD, 0, 0, 0x2000, False)] + sweep
                + [(isa.IALU, 0, 0, 0, False)] * 64
                + [(isa.LOAD, 0, 0, 0x2000, False)])
        tl = timeline(rows, dl1_size_kb=dl1_kb, dl1_lat=2, l2_lat=11,
                      l2_size_kb=8192, rob_size=128, iq_size=64, lsq_size=64,
                      num_mem_ports=4)
        # Last load: dl1 miss (evicted), l2 hit: dl1_lat + l2_lat.
        assert tl.complete[-1] - tl.issue[-1] == 2 + 11


class TestStructuralArithmetic:
    def test_divider_initiation_interval(self):
        interval = isa.OP_TIMING[isa.IDIV][1]
        rows = [(isa.IDIV, 0, 0, 0, False)] * 2
        tl = timeline(rows)
        assert tl.issue[1] - tl.issue[0] == interval

    def test_commit_width_throughput(self):
        tl = timeline([ALU] * 12)
        # Steady state: exactly 4 commits per cycle.
        commits = tl.commit
        assert commits[11] - commits[3] == 2.0

    def test_rob_dispatch_gating_exact(self):
        # With ROB = 4, instruction 4 dispatches the cycle after
        # instruction 0 commits.
        rows = [(isa.IMULT, 0, 0, 0, False)] + [ALU] * 8
        tl = timeline(rows, rob_size=4, iq_size=4, lsq_size=4)
        assert tl.dispatch[4] == tl.commit[0] + 1
