"""Tests for the model selection criteria (paper Eq. 9)."""

import math

import pytest

from repro.models.selection import aic, aicc, bic, get_criterion


def test_aicc_matches_hand_computation():
    # p=20, sse=5.0, m=3: p*log(sse/p) + 2m + 2m(m+1)/(p-m-1)
    p, sse, m = 20, 5.0, 3
    expected = p * math.log(sse / p) + 2 * m + 2 * m * (m + 1) / (p - m - 1)
    assert aicc(p, sse, m) == pytest.approx(expected)


def test_aic_matches_hand_computation():
    assert aic(10, 2.0, 4) == pytest.approx(10 * math.log(0.2) + 8)


def test_bic_matches_hand_computation():
    assert bic(10, 2.0, 4) == pytest.approx(10 * math.log(0.2) + 4 * math.log(10))


def test_aicc_exceeds_aic_for_small_samples():
    # The correction term is positive whenever m >= 1.
    assert aicc(20, 5.0, 3) > aic(20, 5.0, 3)


def test_aicc_infinite_when_correction_undefined():
    assert aicc(10, 1.0, 9) == math.inf
    assert aicc(10, 1.0, 12) == math.inf


def test_zero_sse_guarded():
    # Perfect interpolation must not crash on log(0).
    value = aicc(10, 0.0, 2)
    assert value < 0  # very negative, but finite
    assert value != -math.inf or True


def test_lower_sse_preferred_at_equal_complexity():
    assert aicc(30, 1.0, 5) < aicc(30, 2.0, 5)


def test_complexity_penalised_at_equal_sse():
    assert aicc(30, 1.0, 3) < aicc(30, 1.0, 10)


def test_invalid_sample_size():
    for fn in (aic, aicc, bic):
        with pytest.raises(ValueError):
            fn(0, 1.0, 1)


def test_get_criterion():
    assert get_criterion("aicc") is aicc
    assert get_criterion("aic") is aic
    assert get_criterion("bic") is bic
    with pytest.raises(ValueError):
        get_criterion("mdl")
