"""Tests for the set-associative LRU cache model."""

import pytest

from repro.simulator.cache import Cache


def make_cache(size_kb=1, line=64, assoc=2):
    return Cache(size_kb, line, assoc, "test")


class TestGeometry:
    def test_set_count(self):
        c = Cache(32, 64, 4)
        assert c.num_sets == 32 * 1024 // 64 // 4
        assert c.size_bytes == 32 * 1024

    def test_non_pow2_size_rounds_down(self):
        c = Cache(48, 64, 4)  # 192 sets -> rounds down to 128
        assert c.num_sets == 128

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Cache(0, 64, 2)
        with pytest.raises(ValueError):
            Cache(4, 60, 2)  # line not a power of two
        with pytest.raises(ValueError):
            Cache(4, 64, 0)
        with pytest.raises(ValueError):
            Cache(1, 2048, 2)  # too small for its associativity


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert c.access(0x1000) is False
        assert c.access(0x1000) is True
        assert c.accesses == 2
        assert c.misses == 1

    def test_same_line_hits(self):
        c = make_cache(line=64)
        c.access(0x1000)
        assert c.access(0x1000 + 63) is True
        assert c.access(0x1000 + 64) is False  # next line

    def test_lru_eviction_order(self):
        c = make_cache(size_kb=1, line=64, assoc=2)  # 8 sets
        set_stride = 8 * 64  # same-set addresses are this far apart
        a, b, d = 0x0, set_stride, 2 * set_stride
        c.access(a)
        c.access(b)
        c.access(a)  # a is now MRU, b is LRU
        c.access(d)  # evicts b
        assert c.access(a) is True
        assert c.access(b) is False

    def test_associativity_holds_ways(self):
        c = make_cache(size_kb=1, line=64, assoc=2)
        set_stride = 8 * 64
        c.access(0)
        c.access(set_stride)
        assert c.access(0) is True
        assert c.access(set_stride) is True

    def test_direct_mapped_conflicts(self):
        c = make_cache(size_kb=1, line=64, assoc=1)
        set_stride = 16 * 64
        c.access(0)
        c.access(set_stride)
        assert c.access(0) is False  # conflict-evicted

    def test_probe_does_not_touch_state(self):
        c = make_cache()
        c.access(0x40)
        before = (c.accesses, c.misses)
        assert c.probe(0x40) is True
        assert c.probe(0x999940) is False
        assert (c.accesses, c.misses) == before

    def test_miss_rate(self):
        c = make_cache()
        assert c.miss_rate == 0.0
        c.access(0)
        c.access(0)
        assert c.miss_rate == pytest.approx(0.5)

    def test_reset_stats_keeps_contents(self):
        c = make_cache()
        c.access(0x80)
        c.reset_stats()
        assert c.accesses == 0
        assert c.access(0x80) is True

    def test_capacity_sweep(self):
        # Touch exactly twice the capacity in lines; the second pass over a
        # working set larger than the cache must miss everywhere (LRU).
        c = make_cache(size_kb=1, line=64, assoc=2)  # 16 lines
        lines = 32
        for rep in range(2):
            for i in range(lines):
                c.access(i * 64)
        assert c.misses == 2 * lines

    def test_working_set_within_capacity_all_hits_second_pass(self):
        c = make_cache(size_kb=1, line=64, assoc=2)  # 16 lines
        for i in range(16):
            c.access(i * 64)
        misses_after_fill = c.misses
        for i in range(16):
            assert c.access(i * 64) is True
        assert c.misses == misses_after_fill

    def test_line_of(self):
        c = make_cache(line=64)
        assert c.line_of(0) == c.line_of(63)
        assert c.line_of(64) == c.line_of(0) + 1

    def test_repr(self):
        assert "KB" in repr(make_cache())
