"""Tests for :mod:`repro.obs.history`: ledger, trend, diff, HTML report.

Covers the cross-run observability layer end to end: ledger append/load
round-trips (including real two-process concurrency and torn-line
healing), the MAD drift check with an injected outlier, exact trace-diff
attribution under a fake clock, the pinned ``trace diff --json`` schema,
byte-deterministic self-contained HTML reports, and the one-line exit-1
CLI error paths.
"""

import json
import multiprocessing

import pytest

from repro import obs
from repro.cli import main
from repro.obs import history


class FakeClock:
    """Deterministic clock: each reading advances by ``step``."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


@pytest.fixture
def results_env(tmp_path, monkeypatch):
    """Redirect results/cache dirs into ``tmp_path`` for CLI runs."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    return tmp_path


def make_run(command="build", **fields):
    """A minimal valid ledger record with overrides."""
    record = {"schema": history.HISTORY_SCHEMA_VERSION, "command": command,
              "started": "2026-08-01T00:00:00+00:00"}
    record.update(fields)
    return record


def seed_ledger(records, path=None):
    for record in records:
        history.append_run(record, path)


# -- ledger -----------------------------------------------------------------


class TestLedger:
    def test_append_load_round_trip_preserves_order(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        seed_ledger([make_run(i=i) for i in range(5)], path)
        runs, skipped = history.load_runs(path)
        assert skipped == 0
        assert [r["i"] for r in runs] == [0, 1, 2, 3, 4]
        assert all(r["schema"] == history.HISTORY_SCHEMA_VERSION
                   for r in runs)

    def test_load_missing_ledger_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            history.load_runs(tmp_path / "absent.jsonl")

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        seed_ledger([make_run(i=0)], path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{truncated\n")
            fh.write('"not an object"\n')
        seed_ledger([make_run(i=1)], path)
        runs, skipped = history.load_runs(path)
        assert [r["i"] for r in runs] == [0, 1]
        assert skipped == 2

    def test_append_heals_torn_trailing_line(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        seed_ledger([make_run(i=0)], path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "command": "bu')  # killed mid-write
        seed_ledger([make_run(i=1)], path)
        runs, skipped = history.load_runs(path)
        assert [r.get("i") for r in runs] == [0, 1]
        assert skipped == 1  # the torn line, newline-terminated and skipped

    def test_default_path_honours_results_env(self, results_env, monkeypatch):
        expected = (results_env / "results" / "history" / "runs.jsonl")
        assert history.default_history_path() == expected
        assert history.append_run(make_run()) == expected
        assert expected.exists()

    def test_iter_runs_filters(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        seed_ledger([
            make_run("build", benchmark="mcf", git_sha="abc123",
                     started="2026-08-01T00:00:00+00:00"),
            make_run("build", benchmark="twolf", git_sha="abc999",
                     started="2026-08-02T00:00:00+00:00"),
            make_run("bench", git_sha="def456",
                     started="2026-08-03T00:00:00+00:00"),
        ], path)
        assert len(list(history.iter_runs(path))) == 3
        assert len(list(history.iter_runs(path, command="build"))) == 2
        assert len(list(history.iter_runs(path, benchmark="mcf"))) == 1
        assert len(list(history.iter_runs(path, git_sha="abc"))) == 2
        assert len(list(history.iter_runs(
            path, since="2026-08-02T00:00:00+00:00"))) == 2


def _append_worker(path, barrier, worker, count):
    barrier.wait()  # maximise contention: both processes start together
    for i in range(count):
        history.append_run(make_run(worker=worker, i=i), path)


class TestLedgerConcurrency:
    def test_two_processes_lose_no_records(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        path = tmp_path / "runs.jsonl"
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(target=_append_worker, args=(path, barrier, w, 10))
            for w in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        runs, skipped = history.load_runs(path)
        assert skipped == 0
        assert len(runs) == 20
        assert {(r["worker"], r["i"]) for r in runs} \
            == {(w, i) for w in range(2) for i in range(10)}


class TestRecordFromManifest:
    def test_lifts_manifest_overrides_counters_and_extras(self):
        manifest = obs.build_manifest(
            "build", seed=7,
            overrides={"sample_size": 90, "test_points": 50},
            metrics={"counters": {"simulations_run": 10.0,
                                  "cache_hits": 30.0}},
            wall_time_s=1.5, jobs=2,
            extra={"benchmark": "mcf", "mean_error_pct": 2.5},
        )
        record = history.record_from_manifest(
            manifest, trace_path="results/trace-build.jsonl",
            gate={"checked": True, "passed": True},
            extra={"note": "x"},
        )
        assert record["schema"] == history.HISTORY_SCHEMA_VERSION
        assert record["command"] == "build"
        assert record["seed"] == 7
        assert record["sample_size"] == 90  # lifted from overrides
        assert record["benchmark"] == "mcf"
        assert record["mean_error_pct"] == 2.5
        assert record["jobs"] == 2
        assert record["cache_hit_rate"] == 0.75
        assert record["simulations_run"] == 10.0
        assert record["cache_hits"] == 30.0
        assert record["trace_path"] == "results/trace-build.jsonl"
        assert record["gate"] == {"checked": True, "passed": True}
        assert record["note"] == "x"
        assert "test_points" not in record  # not a headline field


# -- manifest satellites ----------------------------------------------------


class TestManifestCostFields:
    def test_jobs_and_cache_hit_rate_recorded(self):
        manifest = obs.build_manifest(
            "build", jobs=4,
            metrics={"counters": {"simulations_run": 25.0,
                                  "cache_hits": 75.0}},
        )
        assert manifest["schema"] == 1
        assert manifest["jobs"] == 4
        assert manifest["cache_hit_rate"] == 0.75

    def test_cache_hit_rate_none_without_lookups(self):
        assert obs.cache_hit_rate(None) is None
        assert obs.cache_hit_rate({"counters": {}}) is None
        assert obs.build_manifest("report")["cache_hit_rate"] is None

    def test_monotonic_follows_collector_clock(self):
        with obs.collecting(clock=FakeClock(step=1.0)):
            first = obs.monotonic()
            second = obs.monotonic()
        assert second - first == 1.0
        assert isinstance(obs.monotonic(), float)  # raw clock when off

    def test_numpy_and_python_versions_recorded(self):
        import platform

        import numpy as np

        manifest = obs.build_manifest("build")
        assert manifest["python_version"] == platform.python_version()
        assert manifest["numpy_version"] == np.__version__
        # The ledger lifts both fields, leniently: absent stays absent.
        record = history.record_from_manifest(manifest)
        assert record["python_version"] == platform.python_version()
        assert record["numpy_version"] == np.__version__
        bare = history.record_from_manifest({"schema": 1, "command": "x"})
        assert "numpy_version" not in bare


# -- trend / drift check ----------------------------------------------------


class TestTrend:
    def test_median_and_mad(self):
        assert history.median([3.0, 1.0, 2.0]) == 2.0
        assert history.median([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert history.mad([1.0, 2.0, 3.0, 100.0]) == 1.0

    def test_modified_zscore_zero_mad(self):
        flat = [2.0, 2.0, 2.0, 2.0]
        assert history.modified_zscore(2.0, flat) == 0.0
        assert history.modified_zscore(3.0, flat) == float("inf")
        assert history.modified_zscore(1.0, flat) == float("-inf")

    def test_series_by_index_and_by_field(self):
        runs = [make_run(wall_time_s=1.0, sample_size=30),
                make_run(note="no value"),
                make_run(wall_time_s=2.0, sample_size=50),
                make_run(wall_time_s=True)]  # bools are not numbers
        assert history.series(runs, "wall_time_s") == [(0, 1.0), (2, 2.0)]
        assert history.series(runs, "wall_time_s", x_field="sample_size") \
            == [(30, 1.0), (50, 2.0)]

    def test_check_flags_injected_outlier_only_on_regression(self):
        base = [make_run(wall_time_s=1.0 + 0.01 * i) for i in range(5)]
        anomalies = history.check_latest(base + [make_run(wall_time_s=50.0)])
        assert len(anomalies) == 1 and "wall_time_s" in anomalies[0]
        # an *improvement* of the same magnitude never flags
        assert history.check_latest(
            base + [make_run(wall_time_s=0.001)]) == []

    def test_check_needs_min_history_and_comparable_runs(self):
        short = [make_run(wall_time_s=1.0)] * 3 + [make_run(wall_time_s=50.0)]
        assert history.check_latest(short) == []  # only 3 prior runs
        mixed = [make_run("bench", wall_time_s=1.0)] * 6 \
            + [make_run("build", wall_time_s=50.0)]
        assert history.check_latest(mixed) == []  # no comparable history
        assert history.check_latest([]) == []

    def test_benchmark_scopes_comparability(self):
        runs = [make_run(benchmark="mcf", wall_time_s=1.0)] * 6 \
            + [make_run(benchmark="twolf", wall_time_s=50.0)]
        assert history.check_latest(runs) == []
        runs = [make_run(benchmark="mcf", wall_time_s=1.0 + 0.01 * i)
                for i in range(6)] + [make_run(benchmark="mcf",
                                               wall_time_s=50.0)]
        assert len(history.check_latest(runs)) == 1

    def test_sparkline_and_render(self):
        assert history.sparkline([1.0, 1.0]) == "▁▁"
        line = history.sparkline([0.0, 1.0, 2.0])
        assert line[0] == "▁" and line[-1] == "█"
        text = history.render_trend([(0, 1.0), (1, 2.0)], "wall_time_s")
        assert "wall_time_s" in text and "median=1.5" in text

    def test_trend_document_schema_and_stats(self):
        doc = history.trend_document([(30, 1.0), (50, 3.0), (70, 2.0)],
                                     "mean_error_pct", x_field="sample_size")
        assert doc["schema"] == history.TREND_SCHEMA_VERSION
        assert doc["field"] == "mean_error_pct"
        assert doc["x_field"] == "sample_size"
        assert doc["count"] == 3
        assert (doc["min"], doc["median"], doc["max"]) == (1.0, 2.0, 3.0)
        assert doc["points"][0] == {"x": 30, "value": 1.0}

    def test_trend_document_empty_series(self):
        doc = history.trend_document([], "wall_time_s")
        assert doc["count"] == 0
        assert doc["min"] is None and doc["median"] is None
        assert doc["points"] == [] and doc["x_field"] is None

    def test_latest_gate_skips_unchecked(self):
        runs = [make_run(gate={"checked": True, "passed": False}),
                make_run(gate={"checked": False, "passed": None})]
        assert history.latest_gate(runs)["passed"] is False
        assert history.latest_gate([make_run()]) is None


# -- trace diff -------------------------------------------------------------


def _record_trace(tmp_path, name, fits=1, extra=False, step=0.5):
    """Record a deterministic trace: root -> fit (xN) [-> extra]."""
    with obs.collecting(clock=FakeClock(step=step)) as collector:
        with obs.span("root"):
            for _ in range(fits):
                with obs.span("fit"):
                    pass
            if extra:
                with obs.span("extra"):
                    pass
    return obs.write_trace(collector, tmp_path / name,
                           header={"command": "test"})


class TestTraceDiff:
    def test_attribution_sums_exactly_to_total_delta(self, tmp_path):
        old = obs.read_trace(_record_trace(tmp_path, "old.jsonl", fits=1))
        new = obs.read_trace(
            _record_trace(tmp_path, "new.jsonl", fits=3, extra=True))
        diff = history.diff_traces(old, new)
        assert diff.total_delta_s == pytest.approx(
            diff.attributed_delta_s, abs=1e-12)
        assert diff.total_new_s > diff.total_old_s
        by_stack = {row.stack: row for row in diff.rows}
        fit = by_stack[("root", "fit")]
        assert (fit.calls_old, fit.calls_new, fit.calls_delta) == (1, 3, 2)
        assert by_stack[("root", "extra")].status == "new"
        assert by_stack[("root",)].status == "common"

    def test_gone_stacks_are_attributed(self, tmp_path):
        old = obs.read_trace(
            _record_trace(tmp_path, "old.jsonl", fits=2, extra=True))
        new = obs.read_trace(_record_trace(tmp_path, "new.jsonl", fits=1))
        diff = history.diff_traces(old, new)
        by_stack = {row.stack: row for row in diff.rows}
        gone = by_stack[("root", "extra")]
        assert gone.status == "gone"
        assert gone.self_delta_s < 0
        assert diff.total_delta_s == pytest.approx(
            diff.attributed_delta_s, abs=1e-12)

    def test_render_marks_new_and_gone(self, tmp_path):
        old = obs.read_trace(_record_trace(tmp_path, "old.jsonl"))
        new = obs.read_trace(
            _record_trace(tmp_path, "new.jsonl", extra=True))
        text = history.render_diff(history.diff_traces(old, new))
        assert "trace diff:" in text
        assert "[new]" in text
        assert "root;extra" in text

    def test_json_document_schema_is_pinned(self, tmp_path):
        old = obs.read_trace(_record_trace(tmp_path, "old.jsonl"))
        new = obs.read_trace(
            _record_trace(tmp_path, "new.jsonl", fits=2))
        doc = history.diff_as_dict(history.diff_traces(old, new))
        assert set(doc) == {"schema", "old", "new", "total_delta_s",
                            "attributed_delta_s", "spans"}
        assert doc["schema"] == history.DIFF_SCHEMA_VERSION
        assert set(doc["old"]) == {"command", "total_s"}
        for row in doc["spans"]:
            assert set(row) == {
                "stack", "status", "calls_old", "calls_new", "calls_delta",
                "self_old_s", "self_new_s", "self_delta_s",
                "cum_old_s", "cum_new_s",
            }
        # rows come ranked by |self delta|
        deltas = [abs(r["self_delta_s"]) for r in doc["spans"]]
        assert deltas == sorted(deltas, reverse=True)


# -- HTML report ------------------------------------------------------------


FETCH_TOKENS = ("<script", "<link", "<img", "@import", "url(",
                "http://", "https://")


def synthetic_runs():
    runs = [make_run(benchmark="twolf", sample_size=n, mean_error_pct=e,
                     wall_time_s=1.0 + i, git_sha="abc123def")
            for i, (n, e) in enumerate([(16, 9.1), (32, 5.2), (64, 3.0)])]
    runs.append(make_run("bench", bench_wall_s=0.5,
                         gate={"checked": True, "passed": True,
                               "violations": [], "baseline": "b.json"}))
    return runs


class TestHtmlReport:
    def test_deterministic_and_self_contained(self, tmp_path):
        trace = obs.read_trace(_record_trace(tmp_path, "t.jsonl", fits=2))
        first = history.render_html(synthetic_runs(), trace=trace)
        second = history.render_html(synthetic_runs(), trace=trace)
        assert first == second
        for token in FETCH_TOKENS:
            assert token not in first, token
        assert first.startswith("<!DOCTYPE html>")
        assert "<svg" in first  # charts rendered
        assert "perf gate passed" in first
        assert "drift check clean" in first

    def test_failed_gate_and_anomaly_are_labelled(self):
        runs = [make_run(wall_time_s=1.0 + 0.01 * i) for i in range(5)]
        runs.append(make_run(
            wall_time_s=80.0,
            gate={"checked": True, "passed": False,
                  "violations": ["model/tree_build: regression"],
                  "baseline": "b.json"}))
        html = history.render_html(runs)
        assert "perf gate failed" in html
        assert "anomaly" in html
        assert "wall_time_s" in html  # the anomaly detail names the field

    def test_empty_ledger_and_no_trace_degrade_gracefully(self):
        html = history.render_html([])
        assert "0" in html and "no trace recorded" in html
        assert "no attributed runs recorded" in html
        for token in FETCH_TOKENS:
            assert token not in html, token

    def test_stack_section_renders_bars_and_text_values(self):
        runs = synthetic_runs()
        runs.append(make_run(
            "stacks", benchmark="mcf", git_sha="abc123def",
            stack_mem_frac=0.8, stack_frontend_frac=0.1,
            stack={"base": 10.0, "branch_redirect": 5.0, "dram": 85.0}))
        html = history.render_html(runs)
        assert "CPI stacks (cycle accounting)" in html
        assert 'class="stackbar"' in html
        # Segment widths are cycle shares; values appear as text too
        # (tooltip + table), never color alone.
        assert "width: 85%" in html
        assert "dram: 85 cycles (85.0%)" in html
        assert "mcf @ abc123de" in html
        assert "85.0%" in html  # table share column
        # Deterministic like the rest of the report.
        assert html == history.render_html(runs)

    def test_stack_section_skips_empty_and_malformed_stacks(self):
        runs = [
            make_run("stacks", stack={}),
            make_run("stacks", stack={"base": 0.0}),
            make_run("stacks", stack="not-a-mapping"),
        ]
        html = history.render_html(runs)
        assert "no attributed runs recorded" in html

    def test_model_quality_section_lists_registered_fits(self):
        runs = synthetic_runs()
        runs.append(make_run(
            benchmark="mcf", sample_size=30, mean_error_pct=4.2,
            model_sha="a" * 16, model_version=1, model_family="rbf"))
        runs.append(make_run(
            benchmark="mcf", sample_size=30, mean_error_pct=3.1,
            model_sha="b" * 16, model_version=2, model_family="rbf"))
        html = history.render_html(runs)
        assert "Model quality (registered fits)" in html
        assert "a" * 16 in html and "b" * 16 in html
        assert html == history.render_html(runs)  # still deterministic

    def test_model_quality_section_degrades_without_registrations(self):
        html = history.render_html(synthetic_runs())
        assert "Model quality (registered fits)" in html
        assert "no registered models recorded" in html


# -- CLI --------------------------------------------------------------------


class TestHistoryCli:
    def test_build_appends_ledger_record(self, results_env, capsys):
        code = main(["build", "twolf", "--sample-size", "16",
                     "--test-points", "6", "--trace-length", "2048",
                     "--trace"])
        assert code == 0
        runs, skipped = history.load_runs()
        assert skipped == 0 and len(runs) == 1
        record = runs[0]
        assert record["command"] == "build"
        assert record["benchmark"] == "twolf"
        assert record["sample_size"] == 16
        assert record["jobs"] == 1
        assert record["cache_hit_rate"] == 0.0
        assert record["trace_path"].endswith("trace-build.jsonl")
        assert "mean_error_pct" in record
        assert "[run recorded in" in capsys.readouterr().out

    def test_trace_diff_attributes_wall_delta(self, results_env, capsys):
        for name in ("old.jsonl", "new.jsonl"):
            assert main(["build", "twolf", "--sample-size", "16",
                         "--test-points", "6", "--trace-length", "2048",
                         f"--trace={results_env / name}"]) == 0
        capsys.readouterr()
        assert main(["trace", "diff", str(results_env / "old.jsonl"),
                     str(results_env / "new.jsonl"), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == history.DIFF_SCHEMA_VERSION
        # the attribution accounts for ~100% of the wall-clock delta
        assert abs(doc["attributed_delta_s"] - doc["total_delta_s"]) \
            <= max(0.05 * abs(doc["total_delta_s"]), 1e-9)
        assert sum(r["self_delta_s"] for r in doc["spans"]) \
            == pytest.approx(doc["attributed_delta_s"])

    def test_list_show_and_trend(self, results_env, capsys):
        seed_ledger([make_run(benchmark="mcf", wall_time_s=1.0 + i,
                              git_sha="abc123def") for i in range(3)])
        assert main(["history", "list"]) == 0
        out = capsys.readouterr().out
        assert "build" in out and "mcf" in out and "abc123de" in out
        assert main(["history", "show"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["wall_time_s"] == 3.0  # the latest
        assert main(["history", "trend", "wall_time_s"]) == 0
        out = capsys.readouterr().out
        assert "median=2" in out

    def test_list_filters_by_command(self, results_env, capsys):
        seed_ledger([make_run("build", wall_time_s=1.0),
                     make_run("bench", bench_wall_s=2.0)])
        assert main(["history", "list", "--command", "bench"]) == 0
        out = capsys.readouterr().out
        assert "1 of 2" in out

    def test_check_exits_nonzero_on_injected_outlier(self, results_env,
                                                     capsys):
        seed_ledger([make_run(wall_time_s=1.0 + 0.01 * i)
                     for i in range(5)])
        assert main(["history", "check"]) == 0
        capsys.readouterr()
        history.append_run(make_run(wall_time_s=120.0))
        assert main(["history", "check"]) == 1
        out = capsys.readouterr().out
        assert "ANOMALY" in out and "wall_time_s" in out

    def test_check_passes_on_young_ledger(self, results_env):
        seed_ledger([make_run(wall_time_s=1.0), make_run(wall_time_s=50.0)])
        assert main(["history", "check"]) == 0

    def test_missing_ledger_is_one_line_error(self, results_env):
        with pytest.raises(SystemExit) as excinfo:
            main(["history", "list"])
        assert "no run history" in str(excinfo.value)

    def test_empty_ledger_is_one_line_error(self, results_env):
        path = history.default_history_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("")
        with pytest.raises(SystemExit) as excinfo:
            main(["history", "show"])
        assert "empty run history" in str(excinfo.value)

    def test_single_run_trend_is_one_line_error(self, results_env):
        seed_ledger([make_run(wall_time_s=1.0)])
        with pytest.raises(SystemExit) as excinfo:
            main(["history", "trend", "wall_time_s"])
        assert "not enough data" in str(excinfo.value)

    def test_trend_json_emits_schema_versioned_document(self, results_env,
                                                        capsys):
        seed_ledger([make_run(wall_time_s=1.0, sample_size=30),
                     make_run(wall_time_s=3.0, sample_size=50)])
        assert main(["history", "trend", "wall_time_s",
                     "--x", "sample_size", "--json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert doc["schema"] == history.TREND_SCHEMA_VERSION
        assert doc["points"] == [{"x": 30, "value": 1.0},
                                 {"x": 50, "value": 3.0}]
        # Canonical output: sorted keys, so the document diffs cleanly.
        assert out == json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def test_trend_json_works_from_a_single_reading(self, results_env,
                                                    capsys):
        seed_ledger([make_run(wall_time_s=1.0)])
        assert main(["history", "trend", "wall_time_s", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["count"] == 1

    def test_show_index_out_of_range_is_one_line_error(self, results_env):
        seed_ledger([make_run()])
        with pytest.raises(SystemExit) as excinfo:
            main(["history", "show", "7"])
        assert "no run at index 7" in str(excinfo.value)

    def test_trace_diff_missing_file_is_one_line_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "diff", str(tmp_path / "a.jsonl"),
                  str(tmp_path / "b.jsonl")])
        assert "cannot read trace" in str(excinfo.value)

    def test_explicit_ledger_path_flag(self, tmp_path, capsys):
        path = tmp_path / "elsewhere.jsonl"
        seed_ledger([make_run(wall_time_s=1.0)], path)
        assert main(["history", "show", "--path", str(path)]) == 0
        assert json.loads(capsys.readouterr().out)["wall_time_s"] == 1.0


class TestReportCli:
    def test_html_report_is_byte_deterministic(self, results_env, capsys):
        seed_ledger(synthetic_runs())
        assert main(["report", "--html"]) == 0
        default = results_env / "results" / "report.html"
        assert default.exists()
        first = default.read_bytes()
        custom = results_env / "custom.html"
        assert main(["report", "--html", str(custom)]) == 0
        assert custom.read_bytes() == first
        html = first.decode("utf-8")
        for token in FETCH_TOKENS:
            assert token not in html, token
        # only the two report files were produced — fully self-contained
        assert main(["report", "--html"]) == 0
        assert default.read_bytes() == first

    def test_html_report_includes_latest_trace(self, results_env, capsys):
        assert main(["build", "twolf", "--sample-size", "16",
                     "--test-points", "6", "--trace-length", "2048",
                     "--trace"]) == 0
        assert main(["report", "--html"]) == 0
        html = (results_env / "results" / "report.html").read_text()
        assert "latest trace" in html
        assert "repro/build" in html

    def test_html_report_without_ledger_is_one_line_error(self,
                                                          results_env):
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "--html"])
        assert "no run history" in str(excinfo.value)

    def test_plain_report_appends_ledger_record(self, results_env, capsys):
        results = results_env / "results"
        results.mkdir(parents=True, exist_ok=True)
        (results / "fig1_response_surface.txt").write_text("CONTENT\n")
        assert main(["report"]) == 0
        runs, _ = history.load_runs()
        assert runs[-1]["command"] == "report"
        assert runs[-1]["artifact"].endswith("SUMMARY.txt")


class TestBenchCli:
    def test_bench_appends_gated_ledger_record(self, results_env, capsys):
        assert main(["bench", "obs/metrics_merge", "--quick",
                     "--no-memory"]) == 0
        runs, _ = history.load_runs()
        record = runs[-1]
        assert record["command"] == "bench"
        assert record["bench_wall_s"] > 0
        assert record["gate"]["checked"] is False
        assert "BENCH_" in record["artifact"]

    def test_bench_check_records_gate_verdict(self, results_env, capsys):
        assert main(["bench", "obs/metrics_merge", "--quick", "--no-memory",
                     "--check"]) == 0
        record = history.load_runs()[0][-1]
        assert record["gate"] == {
            "checked": True, "passed": True, "violations": [],
            "baseline": str((__import__("pathlib").Path("benchmarks")
                             / "perf" / "baseline.json")),
        }


class TestExhibitLedger:
    def test_emit_appends_exhibit_record(self, results_env, capsys):
        from repro.experiments.report import emit

        path = emit("unit-history", "table body")
        runs, _ = history.load_runs()
        record = runs[-1]
        assert record["command"] == "exhibit:unit-history"
        assert record["artifact"] == str(path)

    def test_run_exhibit_records_wall_time(self, results_env, capsys,
                                           monkeypatch):
        from repro.experiments import common
        from repro.experiments.registry import run_exhibit

        common.clear_memos()
        run_exhibit("fig2", sizes=(8, 16), candidates=8)
        runs, _ = history.load_runs()
        record = runs[-1]
        assert record["command"] == "exhibit:fig2"
        assert record["exhibit"] == "Figure 2"
        assert record["wall_time_s"] >= 0
