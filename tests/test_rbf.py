"""Tests for RBF networks and their tree-based construction."""

import numpy as np
import pytest

from repro.models.rbf import (
    RBFNetwork,
    build_rbf_from_tree,
    gaussian_design_matrix,
    search_rbf_model,
)


class TestDesignMatrix:
    def test_unit_response_at_center(self):
        h = gaussian_design_matrix(
            np.array([[0.3, 0.7]]), np.array([[0.3, 0.7]]), np.array([[0.1, 0.1]])
        )
        assert h[0, 0] == pytest.approx(1.0)

    def test_matches_paper_equation(self):
        # h(x) = exp(-sum_k (x_k - c_k)^2 / r_k^2)  (Eq. 2)
        x = np.array([[0.5, 0.2]])
        c = np.array([[0.1, 0.6]])
        r = np.array([[0.4, 0.8]])
        expected = np.exp(-((0.4 / 0.4) ** 2 + (0.4 / 0.8) ** 2))
        h = gaussian_design_matrix(x, c, r)
        assert h[0, 0] == pytest.approx(expected)

    def test_anisotropic_radii(self):
        # Same offset along each axis, but a larger radius in axis 1 means
        # less decay from that axis.
        x = np.array([[0.2, 0.0], [0.0, 0.2]])
        c = np.zeros((1, 2))
        r = np.array([[0.1, 1.0]])
        h = gaussian_design_matrix(x, c, r)
        assert h[0, 0] < h[1, 0]

    def test_empty_centers(self):
        h = gaussian_design_matrix(np.zeros((3, 2)), np.zeros((0, 2)), np.zeros((0, 2)))
        assert h.shape == (3, 0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gaussian_design_matrix(np.zeros((2, 2)), np.zeros((1, 2)), np.zeros((1, 3)))


class TestRBFNetwork:
    def test_predict_is_weighted_sum(self):
        net = RBFNetwork(
            centers=np.array([[0.0], [1.0]]),
            radii=np.array([[0.5], [0.5]]),
            weights=np.array([2.0, -1.0]),
        )
        x = np.array([[0.0]])
        expected = 2.0 * 1.0 - 1.0 * np.exp(-4.0)
        assert net.predict(x)[0] == pytest.approx(expected)

    def test_accepts_1d_point(self):
        net = RBFNetwork(np.array([[0.5, 0.5]]), np.array([[1, 1]]), np.array([1.0]))
        assert net.predict(np.array([0.5, 0.5])).shape == (1,)

    def test_dimension_check(self):
        net = RBFNetwork(np.array([[0.5, 0.5]]), np.array([[1, 1]]), np.array([1.0]))
        with pytest.raises(ValueError):
            net.predict(np.zeros((3, 5)))

    def test_weight_count_check(self):
        with pytest.raises(ValueError):
            RBFNetwork(np.zeros((2, 2)), np.ones((2, 2)), np.array([1.0]))

    def test_describe_lists_units(self):
        net = RBFNetwork(np.zeros((2, 3)), np.ones((2, 3)), np.array([1.0, 2.0]))
        text = net.describe()
        assert "2 Gaussian units" in text
        assert "unit 0" in text and "unit 1" in text


class TestBuildFromTree:
    def _sample(self, rng, n=60):
        x = rng.random((n, 2))
        y = 1.0 + np.sin(3 * x[:, 0]) + x[:, 1] ** 2
        return x, y

    def test_interpolates_smooth_function(self, rng):
        x, y = self._sample(rng)
        net, info = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        pred = net.predict(x)
        rmse = np.sqrt(np.mean((pred - y) ** 2))
        assert rmse < 0.1 * y.std()

    def test_generalizes_to_new_points(self, rng):
        x, y = self._sample(rng, n=80)
        net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        xt = rng.random((40, 2))
        yt = 1.0 + np.sin(3 * xt[:, 0]) + xt[:, 1] ** 2
        err = np.abs(net.predict(xt) - yt) / np.abs(yt)
        assert err.mean() < 0.05

    def test_info_consistency(self, rng):
        x, y = self._sample(rng)
        net, info = build_rbf_from_tree(x, y, p_min=3, alpha=5.0)
        assert info.p_min == 3
        assert info.alpha == 5.0
        assert info.num_centers == net.num_centers
        assert info.num_centers <= info.num_candidates
        assert len(info.selected_nodes) == info.num_centers

    def test_fewer_centers_than_sample(self, rng):
        # Paper: the number of centers stays well below the sample size
        # (AICc penalises complexity).
        x, y = self._sample(rng, n=100)
        _, info = build_rbf_from_tree(x, y, p_min=1, alpha=6.0)
        assert info.num_centers < 100

    def test_radii_scale_with_alpha(self, rng):
        x, y = self._sample(rng)
        net_small, _ = build_rbf_from_tree(x, y, p_min=2, alpha=2.0)
        net_large, _ = build_rbf_from_tree(x, y, p_min=2, alpha=8.0)
        assert net_large.radii.mean() > net_small.radii.mean()

    def test_constant_data(self):
        x = np.linspace(0, 1, 10)[:, None]
        y = np.full(10, 3.0)
        net, info = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
        assert net.predict(np.array([[0.5]]))[0] == pytest.approx(3.0, rel=1e-3)

    def test_max_candidates_cap(self, rng):
        x, y = self._sample(rng, n=80)
        _, info = build_rbf_from_tree(x, y, p_min=1, alpha=4.0, max_candidates=9)
        assert info.num_candidates <= 9

    def test_criterion_choices(self, rng):
        x, y = self._sample(rng, n=40)
        for criterion in ("aic", "aicc", "bic"):
            net, info = build_rbf_from_tree(x, y, p_min=2, alpha=4.0, criterion=criterion)
            assert info.criterion_name == criterion
            assert np.isfinite(info.criterion_value)


class TestSearch:
    def test_search_returns_lowest_criterion(self, rng):
        x = rng.random((50, 2))
        y = x[:, 0] ** 2 + 0.5 * x[:, 1]
        result = search_rbf_model(x, y, p_min_grid=(1, 3), alpha_grid=(2.0, 5.0, 8.0))
        assert len(result.tried) == 6
        best = min(result.tried, key=lambda i: i.criterion_value)
        assert result.info.criterion_value == best.criterion_value

    def test_search_best_params_within_grid(self, rng):
        x = rng.random((40, 2))
        y = np.sin(4 * x[:, 0])
        result = search_rbf_model(x, y, p_min_grid=(1, 2), alpha_grid=(3.0, 6.0))
        assert result.info.p_min in (1, 2)
        assert result.info.alpha in (3.0, 6.0)
