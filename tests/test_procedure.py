"""Tests for the BuildRBFModel procedure on cheap synthetic responses."""

import numpy as np
import pytest

from repro.core.design_space import DesignSpace, Parameter
from repro.core.procedure import BuildRBFModel
from repro.core.validation import ErrorReport, prediction_errors


@pytest.fixture
def space():
    return DesignSpace(
        [
            Parameter("a", 0, 10, None, "linear"),
            Parameter("b", 1, 100, None, "log"),
            Parameter("c", 0, 1, 4, "linear"),
        ],
        name="synthetic",
    )


@pytest.fixture
def response(space):
    """A smooth non-linear physical-space response with an interaction."""

    def f(points):
        points = np.atleast_2d(points)
        a = points[:, 0] / 10.0
        b = np.log(points[:, 1]) / np.log(100.0)
        c = points[:, 2]
        return 2.0 + np.sin(2.5 * a) + b**2 + 0.8 * a * b + 0.1 * c

    return f


def make_test_set(space, response, n=40, seed=99):
    rng = np.random.default_rng(seed)
    unit = rng.random((n, space.dimension))
    phys = space.decode(unit)
    return phys, response(phys)


class TestBuild:
    def test_accuracy_improves_with_sample_size(self, space, response):
        phys, truth = make_test_set(space, response)
        builder = BuildRBFModel(space, response, seed=1, lhs_candidates=8)
        small = builder.build(15, phys, truth)
        large = builder.build(80, phys, truth)
        assert large.errors.mean < small.errors.mean

    def test_good_absolute_accuracy(self, space, response):
        phys, truth = make_test_set(space, response)
        builder = BuildRBFModel(space, response, seed=1, lhs_candidates=8)
        result = builder.build(80, phys, truth)
        assert result.errors.mean < 2.0  # percent

    def test_result_contents(self, space, response):
        builder = BuildRBFModel(space, response, seed=2, lhs_candidates=4)
        result = builder.build(25)
        assert result.sample_size == 25
        assert result.physical_points.shape == (25, 3)
        assert result.unit_points.shape == (25, 3)
        assert len(result.responses) == 25
        assert result.errors is None  # no test set given
        assert result.info.num_centers >= 1

    def test_history_accumulates(self, space, response):
        builder = BuildRBFModel(space, response, seed=2, lhs_candidates=4)
        builder.build(15)
        builder.build(25)
        assert [r.sample_size for r in builder.history] == [15, 25]

    def test_response_length_mismatch_detected(self, space):
        builder = BuildRBFModel(space, lambda pts: np.zeros(3), seed=0, lhs_candidates=2)
        with pytest.raises(ValueError):
            builder.build(10)

    def test_trains_on_snapped_coordinates(self, space, response):
        builder = BuildRBFModel(space, response, seed=3, lhs_candidates=4)
        result = builder.build(20)
        # Column c has 4 levels: its unit coordinates must sit on the grid.
        c_units = result.unit_points[:, 2]
        grid = np.linspace(0, 1, 4)
        assert all(min(abs(u - g) for g in grid) < 1e-9 for u in c_units)


class TestBuildUntil:
    def test_stops_at_target(self, space, response):
        phys, truth = make_test_set(space, response)
        builder = BuildRBFModel(space, response, seed=1, lhs_candidates=8)
        results = builder.build_until([15, 40, 80, 120], phys, truth,
                                      target_mean_error=2.5)
        assert results[-1].errors.mean <= 2.5
        assert len(results) < 4 or results[-1].sample_size == 120

    def test_no_target_runs_all_sizes(self, space, response):
        phys, truth = make_test_set(space, response)
        builder = BuildRBFModel(space, response, seed=1, lhs_candidates=4)
        results = builder.build_until([10, 20], phys, truth)
        assert [r.sample_size for r in results] == [10, 20]


class TestErrorReport:
    def test_prediction_errors_math(self):
        report = prediction_errors(np.array([1.0, 2.0, 4.0]), np.array([1.1, 1.8, 4.0]))
        assert report.mean == pytest.approx((10 + 10 + 0) / 3)
        assert report.max == pytest.approx(10.0)
        assert report.count == 3

    def test_row_rounding(self):
        report = ErrorReport(mean=2.345, max=17.02, std=1.99, count=50)
        assert report.row() == (2.3, 17.0, 2.0)

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            prediction_errors(np.array([0.0, 1.0]), np.array([1.0, 1.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            prediction_errors(np.array([]), np.array([]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            prediction_errors(np.array([1.0]), np.array([1.0, 2.0]))

    def test_str(self):
        text = str(ErrorReport(1.0, 2.0, 0.5, 10))
        assert "mean=1.00%" in text


class TestBootstrapCI:
    def test_ci_brackets_mean(self):
        import numpy as np

        report = prediction_errors(
            np.linspace(1, 2, 40), np.linspace(1, 2, 40) * 1.03
        )
        lo, hi = report.mean_ci()
        assert lo <= report.mean <= hi

    def test_ci_narrow_for_constant_errors(self):
        import numpy as np

        truth = np.full(30, 2.0)
        pred = truth * 1.05  # exactly 5% everywhere
        report = prediction_errors(truth, pred)
        lo, hi = report.mean_ci()
        assert hi - lo < 1e-9

    def test_ci_deterministic(self):
        import numpy as np

        rng = np.random.default_rng(3)
        truth = rng.random(25) + 1
        report = prediction_errors(truth, truth * (1 + rng.normal(0, 0.05, 25)))
        assert report.mean_ci(seed=1) == report.mean_ci(seed=1)
        assert report.mean_ci(seed=1) != report.mean_ci(seed=2)

    def test_missing_percentages_returns_none(self):
        report = ErrorReport(mean=1.0, max=2.0, std=0.5, count=10)
        assert report.mean_ci() is None

    def test_invalid_confidence(self):
        import numpy as np

        report = prediction_errors(np.ones(5) * 2, np.ones(5) * 2.1)
        with pytest.raises(ValueError):
            report.mean_ci(confidence=1.5)
