"""Tests for the trace representation and its invariants."""

import numpy as np
import pytest

from repro.simulator import isa
from repro.simulator.trace import Trace, empty_trace


def make_trace(**overrides):
    fields = dict(
        op=np.array([isa.IALU, isa.LOAD, isa.BRANCH], dtype=np.int8),
        src1=np.array([0, 1, 2], dtype=np.int32),
        src2=np.zeros(3, dtype=np.int32),
        addr=np.array([0, 0x1000, 0], dtype=np.int64),
        pc=np.array([0x400000, 0x400004, 0x400008], dtype=np.int64),
        taken=np.array([False, False, True]),
    )
    fields.update(overrides)
    return Trace(**fields)


class TestValidation:
    def test_valid_trace_passes(self):
        make_trace().validate()

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            make_trace(src1=np.zeros(2, dtype=np.int32))

    def test_negative_distance(self):
        with pytest.raises(ValueError):
            make_trace(src1=np.array([0, -1, 0], dtype=np.int32)).validate()

    def test_distance_beyond_start(self):
        with pytest.raises(ValueError):
            make_trace(src1=np.array([1, 0, 0], dtype=np.int32)).validate()

    def test_memory_op_needs_address(self):
        with pytest.raises(ValueError):
            make_trace(addr=np.zeros(3, dtype=np.int64)).validate()

    def test_non_control_cannot_be_taken(self):
        with pytest.raises(ValueError):
            make_trace(taken=np.array([True, False, True])).validate()

    def test_jump_must_be_taken(self):
        t = make_trace(
            op=np.array([isa.IALU, isa.LOAD, isa.JUMP], dtype=np.int8),
            taken=np.array([False, False, False]),
        )
        with pytest.raises(ValueError):
            t.validate()


class TestUtilities:
    def test_len(self):
        assert len(make_trace()) == 3
        assert len(empty_trace()) == 0

    def test_mix_sums_to_one(self):
        mix = make_trace().mix()
        assert sum(mix.values()) == pytest.approx(1.0)
        assert mix["load"] == pytest.approx(1 / 3)

    def test_slice_clips_dependences(self):
        t = make_trace()
        s = t.slice(1, 3)
        assert len(s) == 2
        # First sliced instruction's dependence pointed before the slice.
        assert s.src1[0] == 0
        s.validate()

    def test_rows_iteration(self):
        rows = list(make_trace().rows())
        assert len(rows) == 3
        assert rows[1][0] == isa.LOAD
        assert rows[1][3] == 0x1000
