"""Tests for variance-based sensitivity analysis (Sobol indices)."""

import numpy as np
import pytest

from repro.analysis.anova import interaction_share, rank_by_total, sobol_indices
from repro.core.design_space import DesignSpace, Parameter
from repro.models.base import Model


@pytest.fixture
def space():
    return DesignSpace(
        [Parameter("a", 0, 1, None), Parameter("b", 0, 1, None),
         Parameter("c", 0, 1, None)],
        name="sobol",
    )


class AdditiveModel(Model):
    """y = 2a + b (c irrelevant): purely additive."""

    dimension = 3

    def predict(self, pts):
        pts = np.atleast_2d(pts)
        return 2.0 * pts[:, 0] + pts[:, 1]


class InteractingModel(Model):
    """y = a * b: pure two-factor interaction."""

    dimension = 3

    def predict(self, pts):
        pts = np.atleast_2d(pts)
        return pts[:, 0] * pts[:, 1]


class TestSobol:
    def test_additive_model_indices(self, space):
        ix = sobol_indices(AdditiveModel(), space, samples=16384, seed=1)
        # Var = 4/12 + 1/12; S_a = 0.8, S_b = 0.2, S_c = 0.
        assert ix["a"].first_order == pytest.approx(0.8, abs=0.08)
        assert ix["b"].first_order == pytest.approx(0.2, abs=0.08)
        assert ix["c"].total < 0.03
        assert interaction_share(ix) < 0.1

    def test_additive_first_order_equals_total(self, space):
        ix = sobol_indices(AdditiveModel(), space, samples=4096, seed=1)
        for name in ("a", "b"):
            assert ix[name].interaction < 0.05

    def test_pure_interaction_detected(self, space):
        ix = sobol_indices(InteractingModel(), space, samples=4096, seed=2)
        # For y = a*b on U[0,1]: S_a = S_b ~ 0.43, total ~ 0.57 each.
        assert ix["a"].interaction > 0.08
        assert ix["b"].interaction > 0.08
        assert interaction_share(ix) > 0.1

    def test_ranking(self, space):
        ranked = rank_by_total(sobol_indices(AdditiveModel(), space, samples=2048))
        assert ranked[0].parameter == "a"
        assert ranked[-1].parameter == "c"

    def test_constant_model_rejected(self, space):
        class Flat(Model):
            dimension = 3

            def predict(self, pts):
                return np.ones(len(np.atleast_2d(pts)))

        with pytest.raises(ValueError):
            sobol_indices(Flat(), space, samples=256)

    def test_too_few_samples_rejected(self, space):
        with pytest.raises(ValueError):
            sobol_indices(AdditiveModel(), space, samples=4)

    def test_deterministic(self, space):
        a = sobol_indices(AdditiveModel(), space, samples=512, seed=9)
        b = sobol_indices(AdditiveModel(), space, samples=512, seed=9)
        assert a == b
