"""Tests for adaptive sequential sampling (the future-work extension)."""

import numpy as np
import pytest

from repro.core.design_space import DesignSpace, Parameter
from repro.models.rbf import build_rbf_from_tree
from repro.sampling.adaptive import adaptive_sample


@pytest.fixture
def space():
    return DesignSpace(
        [Parameter("x", 0, 1, None), Parameter("y", 0, 1, None)],
        name="adaptive",
    )


def response(points):
    points = np.atleast_2d(points)
    return np.sin(4 * points[:, 0]) + points[:, 1] ** 2


def builder(x, y):
    net, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
    return net.predict


class TestAdaptiveSample:
    def test_budget_respected(self, space):
        result = adaptive_sample(space, response, builder, budget=40,
                                 seed=0, initial=16, batch=8, pool=64)
        assert len(result.points) == 40
        assert len(result.responses) == 40
        assert sum(result.batch_sizes) == 40

    def test_initial_batch_recorded(self, space):
        result = adaptive_sample(space, response, builder, budget=30,
                                 seed=0, initial=20, batch=5, pool=64)
        assert result.batch_sizes[0] == 20

    def test_budget_below_initial_rejected(self, space):
        with pytest.raises(ValueError):
            adaptive_sample(space, response, builder, budget=10, seed=0, initial=20)

    def test_deterministic(self, space):
        a = adaptive_sample(space, response, builder, budget=30, seed=3,
                            initial=16, batch=7, pool=64)
        b = adaptive_sample(space, response, builder, budget=30, seed=3,
                            initial=16, batch=7, pool=64)
        np.testing.assert_array_equal(a.points, b.points)

    def test_adaptive_points_stay_in_cube(self, space):
        result = adaptive_sample(space, response, builder, budget=36,
                                 seed=1, initial=16, batch=10, pool=64)
        assert result.points.min() >= 0 and result.points.max() <= 1

    def test_final_model_better_than_seed_model(self, space):
        result = adaptive_sample(space, response, builder, budget=60,
                                 seed=2, initial=20, batch=10, pool=128)
        rng = np.random.default_rng(55)
        test = rng.random((100, 2))
        truth = response(test)
        seed_model = builder(result.points[:20], result.responses[:20])
        final_model = builder(result.points, result.responses)
        seed_rmse = np.sqrt(np.mean((seed_model(test) - truth) ** 2))
        final_rmse = np.sqrt(np.mean((final_model(test) - truth) ** 2))
        assert final_rmse < seed_rmse
