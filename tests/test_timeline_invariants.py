"""Property tests over the per-instruction :class:`Timeline`.

The attribution layer reads the core's commit gaps as ground truth, so
the timestamps themselves must obey the pipeline's ordering and capacity
laws.  For every SPEC profile (and the three contrasting design points
pinned in :mod:`tests.test_vectorised`) the collected timeline must
satisfy:

* **stage order** per instruction: ``fetch <= dispatch``,
  ``dispatch + 1 <= issue``, ``issue < complete``,
  ``complete + 1 <= commit``, all integer-valued;
* **program order**: commit times are non-decreasing;
* **commit width**: at most ``commit_width`` instructions share a commit
  cycle;
* **capacity**: instruction ``i`` cannot dispatch until ``i - rob_size``
  has committed (ROB), ``i - iq_size`` has issued (IQ), and the
  ``m - lsq_size``-th memory op has committed (LSQ).
"""

from collections import Counter

import pytest

from repro.core.design_space import paper_design_space
from repro.simulator import isa
from repro.simulator.config import ProcessorConfig
from repro.simulator.ooo_core import OutOfOrderCore
from repro.workloads.spec2000 import benchmark_names, get_trace
from tests.test_vectorised import PIN_POINTS

TRACE_LENGTH = 2048


def _timeline(bench, point):
    space = paper_design_space()
    config = ProcessorConfig.from_design_point(space.resolve(dict(point)))
    core = OutOfOrderCore(config)
    trace = get_trace(bench, TRACE_LENGTH, 0)
    core.run(trace, collect_timeline=True)
    return config, trace, core.timeline


@pytest.mark.parametrize("bench", benchmark_names())
@pytest.mark.parametrize("point_index", range(len(PIN_POINTS)))
def test_timeline_invariants(bench, point_index):
    config, trace, tl = _timeline(bench, PIN_POINTS[point_index])
    n = len(tl.commit)
    assert n == TRACE_LENGTH

    # Stage order and integrality, per instruction.
    for i in range(n):
        f, d, s = tl.fetch[i], tl.dispatch[i], tl.issue[i]
        c, m = tl.complete[i], tl.commit[i]
        assert f <= d, i
        assert d + 1.0 <= s, i
        assert s < c, i
        assert c + 1.0 <= m, i
        for stamp in (f, d, s, c, m):
            assert float(stamp).is_integer(), i

    # In-order, non-decreasing commit.
    assert all(tl.commit[i] >= tl.commit[i - 1] for i in range(1, n))

    # Commit-width bound.
    busiest = max(Counter(tl.commit).values())
    assert busiest <= config.commit_width

    # ROB: dispatch waits for the commit of the instruction rob_size back.
    rob = config.rob_size
    for i in range(rob, n):
        assert tl.commit[i - rob] + 1.0 <= tl.dispatch[i], i

    # IQ: dispatch waits for the issue of the instruction iq_size back.
    iq = config.iq_size
    for i in range(iq, n):
        assert tl.issue[i - iq] + 1.0 <= tl.dispatch[i], i

    # LSQ: a memory op's dispatch waits for the commit of the memory op
    # lsq_size back in memory-op order.
    lsq = config.lsq_size
    mem = [i for i in range(n) if isa.is_memory(int(trace.op[i]))]
    for m_idx in range(lsq, len(mem)):
        assert (tl.commit[mem[m_idx - lsq]] + 1.0
                <= tl.dispatch[mem[m_idx]]), mem[m_idx]


def test_timeline_matches_attribution_commit_stream():
    """The attribution's commit array is the timeline's, element for element."""
    space = paper_design_space()
    config = ProcessorConfig.from_design_point(
        space.resolve(dict(PIN_POINTS[1])))
    core = OutOfOrderCore(config)
    trace = get_trace("mcf", TRACE_LENGTH, 0)
    core.run(trace, collect_timeline=True, collect_attribution=True)
    assert list(core.attribution.commit) == core.timeline.commit
    assert len(core.attribution.tags) == len(core.timeline.commit)
