"""Tests for the linear-regression baseline with interactions."""

import numpy as np
import pytest

from repro.models.linear import LinearInteractionModel, Term, candidate_terms


class TestTerms:
    def test_candidate_counts(self):
        # 1 intercept + n mains + n(n-1)/2 interactions.
        terms = candidate_terms(9)
        assert len(terms) == 1 + 9 + 36
        no_inter = candidate_terms(9, interactions=False)
        assert len(no_inter) == 10

    def test_labels(self):
        names = ["a", "b", "c"]
        assert Term(()).label(names) == "1"
        assert Term((1,)).label(names) == "b"
        assert Term((0, 2)).label(names) == "a*c"


class TestFit:
    def test_recovers_exact_linear_function(self, rng):
        x = rng.random((60, 3))
        z = 2 * x - 1
        y = 1.0 + 2.0 * z[:, 0] - 3.0 * z[:, 2]
        model = LinearInteractionModel.fit(x, y)
        pred = model.predict(rng.random((20, 3)))
        xt = rng.random((20, 3))
        zt = 2 * xt - 1
        np.testing.assert_allclose(
            model.predict(xt), 1.0 + 2.0 * zt[:, 0] - 3.0 * zt[:, 2], atol=1e-8
        )

    def test_recovers_interaction(self, rng):
        x = rng.random((80, 2))
        z = 2 * x - 1
        y = 0.5 + 1.5 * z[:, 0] * z[:, 1]
        model = LinearInteractionModel.fit(x, y)
        labels = [t.label() for t in model.terms]
        assert "x0*x1" in labels
        xt = rng.random((30, 2))
        zt = 2 * xt - 1
        np.testing.assert_allclose(
            model.predict(xt), 0.5 + 1.5 * zt[:, 0] * zt[:, 1], atol=1e-8
        )

    def test_aic_drops_noise_terms(self, rng):
        # Only z0 matters; stepwise selection should keep a small model.
        x = rng.random((100, 5))
        z = 2 * x - 1
        y = 3.0 * z[:, 0] + rng.normal(scale=0.01, size=100)
        model = LinearInteractionModel.fit(x, y)
        assert len(model.terms) < 8

    def test_small_sample_uses_forward_selection(self, rng):
        # p=15 cannot support 46 features; the fit must still work.
        x = rng.random((15, 9))
        z = 2 * x - 1
        y = 2.0 * z[:, 1] + 1.0
        model = LinearInteractionModel.fit(x, y)
        xt = rng.random((10, 9))
        zt = 2 * xt - 1
        err = np.abs(model.predict(xt) - (2.0 * zt[:, 1] + 1.0))
        assert err.max() < 0.2

    def test_cannot_fit_nonlinear_response_well(self, rng):
        # The motivating limitation: a sharp ridge is not representable.
        x = rng.random((120, 2))
        y = np.where(x[:, 0] < 0.3, 5.0, 1.0)
        model = LinearInteractionModel.fit(x, y)
        resid = np.abs(model.predict(x) - y)
        assert resid.max() > 0.5  # large residuals remain somewhere

    def test_intercept_always_kept(self, rng):
        x = rng.random((50, 3))
        y = rng.random(50)
        model = LinearInteractionModel.fit(x, y)
        assert model.terms[0].dims == ()

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            LinearInteractionModel.fit(rng.random((10, 2)), rng.random(9))

    def test_describe(self, rng):
        x = rng.random((30, 2))
        y = x[:, 0]
        model = LinearInteractionModel.fit(x, y)
        text = model.describe(["alpha", "beta"])
        assert text.startswith("CPI = ")
        assert "alpha" in text

    def test_predict_dimension_check(self, rng):
        x = rng.random((30, 3))
        model = LinearInteractionModel.fit(x, x[:, 0])
        with pytest.raises(ValueError):
            model.predict(rng.random((5, 2)))
