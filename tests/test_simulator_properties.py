"""Property-based and invariant tests for the full simulator.

These check the *response-surface* properties the modeling study relies
on: determinism, sane CPI bounds, and monotone behaviour of the latency
parameters on a fixed trace.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design_space import paper_design_space
from repro.simulator.config import ProcessorConfig
from repro.simulator.simulator import Simulator, simulate, simulate_design_point
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import PROFILES

TRACE = generate_trace(PROFILES["twolf"], 3000, seed=5)


def cpi(**overrides):
    return simulate(ProcessorConfig(**overrides), TRACE).cpi


config_strategy = st.fixed_dictionaries(
    {
        "pipe_depth": st.integers(7, 24),
        "rob_size": st.integers(24, 128),
        "l2_lat": st.integers(5, 20),
        "dl1_lat": st.integers(1, 4),
        "il1_size_kb": st.sampled_from([8, 16, 32, 64]),
        "dl1_size_kb": st.sampled_from([8, 16, 32, 64]),
        "l2_size_kb": st.sampled_from([256, 512, 1024, 2048, 4096, 8192]),
    }
)


@settings(max_examples=12, deadline=None)
@given(cfg=config_strategy)
def test_cpi_bounds_across_space(cfg):
    rob = cfg["rob_size"]
    result = simulate(
        ProcessorConfig(iq_size=max(1, rob // 2), lsq_size=max(1, rob // 2), **cfg),
        TRACE,
    )
    # CPI is bounded below by the commit width and above by a full stall
    # per instruction at memory latency.
    assert 0.25 <= result.cpi < 200.0
    assert 0.0 <= result.dl1_miss_rate <= 1.0
    assert 0.0 <= result.branch_mispredict_rate <= 1.0


@settings(max_examples=8, deadline=None)
@given(cfg=config_strategy, seed=st.integers(0, 3))
def test_simulation_is_deterministic(cfg, seed):
    rob = cfg["rob_size"]
    config = ProcessorConfig(iq_size=max(1, rob // 2), lsq_size=max(1, rob // 2), **cfg)
    assert simulate(config, TRACE).cpi == simulate(config, TRACE).cpi


def test_l2_latency_monotone():
    values = [cpi(l2_lat=l) for l in (5, 10, 15, 20)]
    assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))


def test_dl1_latency_monotone():
    values = [cpi(dl1_lat=l) for l in (1, 2, 3, 4)]
    assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))


def test_dl1_size_improves_cpi():
    assert cpi(dl1_size_kb=64) < cpi(dl1_size_kb=8)


def test_l2_size_improves_cpi():
    assert cpi(l2_size_kb=8192) <= cpi(l2_size_kb=256)


def test_bigger_window_does_not_hurt():
    small = cpi(rob_size=24, iq_size=12, lsq_size=12)
    big = cpi(rob_size=128, iq_size=64, lsq_size=64)
    assert big <= small + 0.05


def test_deeper_pipe_does_not_help():
    assert cpi(pipe_depth=24) >= cpi(pipe_depth=7) - 1e-9


def test_simulator_facade_keeps_core(tiny_trace, default_config):
    sim = Simulator(default_config)
    sim.run(tiny_trace)
    assert sim.last_core is not None


def test_simulate_design_point_resolves_fractions(tiny_trace):
    space = paper_design_space()
    point = {
        "pipe_depth": 12, "rob_size": 64, "iq_frac": 0.5, "lsq_frac": 0.5,
        "l2_size_kb": 1024, "l2_lat": 12, "il1_size_kb": 32,
        "dl1_size_kb": 32, "dl1_lat": 2,
    }
    result = simulate_design_point(space, point, tiny_trace)
    assert result.cpi > 0
