"""Tests for the substrate extensions: prefetchers, TLBs, writebacks."""

import numpy as np
import pytest

from repro.simulator.cache import Cache
from repro.simulator.config import ProcessorConfig
from repro.simulator.hierarchy import MemoryHierarchy
from repro.simulator.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.simulator.simulator import simulate
from repro.simulator.tlb import TLB
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import PROFILES


class TestNextLinePrefetcher:
    def test_prefetches_next_line(self):
        pf = NextLinePrefetcher(64)
        assert pf.on_miss(0x1010) == [0x1040]
        assert pf.issued == 1

    def test_invalid_line_size(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(60)


class TestStridePrefetcher:
    def test_confirms_before_prefetching(self):
        pf = StridePrefetcher(entries=64, degree=1, line_size=64)
        assert pf.on_access(0x400, 0x1000) == []  # first touch
        assert pf.on_access(0x400, 0x1100) == []  # stride learned
        assert pf.on_access(0x400, 0x1200) == []  # stride confirmed
        out = pf.on_access(0x400, 0x1300)  # steady: prefetch ahead
        assert out == [0x1400]

    def test_irregular_stream_stays_quiet(self):
        pf = StridePrefetcher(entries=64, degree=2)
        rng = np.random.default_rng(1)
        issued = 0
        for _ in range(200):
            issued += len(pf.on_access(0x400, int(rng.integers(0, 1 << 20))))
        assert issued < 10

    def test_degree_scales_prefetches(self):
        pf = StridePrefetcher(entries=64, degree=3, line_size=64)
        for addr in (0x1000, 0x1100, 0x1200):
            pf.on_access(0x400, addr)
        out = pf.on_access(0x400, 0x1300)
        assert len(out) == 3

    def test_small_stride_dedupes_lines(self):
        pf = StridePrefetcher(entries=64, degree=2, line_size=64)
        for addr in (0x1000, 0x1008, 0x1010):
            pf.on_access(0x400, addr)
        out = pf.on_access(0x400, 0x1018)
        # 8-byte strides stay within the current line: nothing new to fetch.
        assert out == []

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            StridePrefetcher(entries=100)
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(entries=4, walk_latency=30)
        assert tlb.access(0x1000) == 30
        assert tlb.access(0x1FFF) == 0  # same page
        assert tlb.access(0x2000) == 30  # next page

    def test_lru_eviction(self):
        tlb = TLB(entries=2, walk_latency=10)
        tlb.access(0x1000)
        tlb.access(0x2000)
        tlb.access(0x1000)  # page 1 MRU
        tlb.access(0x3000)  # evicts page 2
        assert tlb.access(0x1000) == 0
        assert tlb.access(0x2000) == 10

    def test_miss_rate(self):
        tlb = TLB(entries=8)
        tlb.access(0x1000)
        tlb.access(0x1000)
        assert tlb.miss_rate == pytest.approx(0.5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TLB(entries=0)
        with pytest.raises(ValueError):
            TLB(walk_latency=-1)


class TestWritebackCache:
    def test_dirty_eviction_counted(self):
        c = Cache(1, 64, 1, track_dirty=True)  # 16 sets, direct-mapped
        stride = 16 * 64
        c.access(0x0, write=True)
        c.access(stride)  # evicts the dirty line
        assert c.writebacks == 1
        assert c.last_writeback == 0x0

    def test_clean_eviction_not_counted(self):
        c = Cache(1, 64, 1, track_dirty=True)
        stride = 16 * 64
        c.access(0x0)
        c.access(stride)
        assert c.writebacks == 0
        assert c.last_writeback == -1

    def test_untracked_cache_never_counts(self):
        c = Cache(1, 64, 1)
        stride = 16 * 64
        c.access(0x0, write=True)
        c.access(stride)
        assert c.writebacks == 0


class TestHierarchyIntegration:
    TRACE = generate_trace(PROFILES["equake"], 4000, seed=3)

    def test_defaults_disable_extensions(self):
        h = MemoryHierarchy(ProcessorConfig())
        assert h.itlb is None and h.stride is None and h.nextline is None
        assert not h.dl1.track_dirty

    def test_stride_prefetch_helps_streaming_workload(self):
        base = simulate(ProcessorConfig(), self.TRACE)
        pf = simulate(ProcessorConfig(enable_stride_prefetch=True,
                                      prefetch_degree=4), self.TRACE)
        assert pf.cpi < base.cpi

    def test_tlb_misses_cost_cycles(self):
        trace = generate_trace(PROFILES["mcf"], 4000, seed=3)
        base = simulate(ProcessorConfig(), trace)
        tlb = simulate(ProcessorConfig(enable_tlb=True), trace)
        assert tlb.cpi > base.cpi  # mcf's footprint blows a 64-entry TLB

    def test_writeback_generates_traffic(self):
        trace = generate_trace(PROFILES["twolf"], 4000, seed=3)
        config = ProcessorConfig(writeback=True, dl1_size_kb=8)
        sim = MemoryHierarchy(config)
        from repro.simulator.ooo_core import OutOfOrderCore

        core = OutOfOrderCore(config)
        core.run(trace)
        stats = core.hierarchy.stats()
        assert stats["dl1_writebacks"] > 0

    def test_extension_stats_keys(self):
        config = ProcessorConfig(enable_tlb=True, enable_stride_prefetch=True)
        from repro.simulator.ooo_core import OutOfOrderCore

        core = OutOfOrderCore(config)
        core.run(self.TRACE)
        stats = core.hierarchy.stats()
        assert "itlb_miss_rate" in stats
        assert "prefetch_fills" in stats
