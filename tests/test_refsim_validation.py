"""Tests for the reference simulator and cross-simulator trend validation."""

import pytest

from repro.core.design_space import paper_design_space
from repro.simulator.config import ProcessorConfig
from repro.simulator.refsim import ReferenceSimulator
from repro.simulator.trace import empty_trace
from repro.simulator.validation import sweep_parameter, validate_trends
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import PROFILES

TRACE = generate_trace(PROFILES["parser"], 3000, seed=21)

BASE = {
    "pipe_depth": 14, "rob_size": 64, "iq_frac": 0.5, "lsq_frac": 0.5,
    "l2_size_kb": 1024, "l2_lat": 12, "il1_size_kb": 32,
    "dl1_size_kb": 32, "dl1_lat": 2,
}


class TestReferenceSimulator:
    def test_empty_trace(self):
        result = ReferenceSimulator(ProcessorConfig()).run(empty_trace())
        assert result.instructions == 0

    def test_produces_positive_cpi(self):
        result = ReferenceSimulator(ProcessorConfig()).run(TRACE)
        assert result.cpi > 0.25

    def test_latency_monotone(self):
        fast = ReferenceSimulator(ProcessorConfig(l2_lat=5)).run(TRACE)
        slow = ReferenceSimulator(ProcessorConfig(l2_lat=20)).run(TRACE)
        assert slow.cpi > fast.cpi

    def test_depth_increases_cpi(self):
        shallow = ReferenceSimulator(ProcessorConfig(pipe_depth=7)).run(TRACE)
        deep = ReferenceSimulator(ProcessorConfig(pipe_depth=24)).run(TRACE)
        assert deep.cpi > shallow.cpi

    def test_reports_miss_rates(self):
        result = ReferenceSimulator(ProcessorConfig()).run(TRACE)
        assert 0 < result.dl1_miss_rate < 1


class TestTrendValidation:
    def test_sweep_structure(self):
        space = paper_design_space()
        report = sweep_parameter(space, BASE, "l2_lat", [5, 12, 20], TRACE)
        assert report.parameter == "l2_lat"
        assert len(report.detailed_cpi) == 3
        assert len(report.reference_cpi) == 3

    def test_l2_latency_trend_agreement(self):
        # The methodological check from the paper: both simulators must
        # agree on trend direction for a first-order parameter.
        space = paper_design_space()
        report = sweep_parameter(space, BASE, "l2_lat", [5, 10, 15, 20], TRACE)
        assert report.agreement >= 0.99

    def test_dl1_lat_trend_agreement(self):
        space = paper_design_space()
        report = sweep_parameter(space, BASE, "dl1_lat", [1, 2, 3, 4], TRACE)
        assert report.agreement >= 0.99

    def test_validate_trends_runs_all_sweeps(self):
        space = paper_design_space()
        reports = validate_trends(
            space, BASE, TRACE,
            {"l2_lat": [5, 20], "pipe_depth": [7, 24]},
        )
        assert [r.parameter for r in reports] == ["l2_lat", "pipe_depth"]
        assert all(r.agreement >= 0.5 for r in reports)

    def test_flat_steps_count_as_agreement(self):
        space = paper_design_space()
        # Sweeping within a tiny range: near-flat response should not fail.
        report = sweep_parameter(space, BASE, "l2_lat", [12, 13], TRACE)
        assert 0.0 <= report.agreement <= 1.0
