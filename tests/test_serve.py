"""The observable serving layer: endpoints, telemetry, HTTP shell.

``ServingApp.handle`` is the transport-independent entry point, so most
tests drive it directly — every endpoint and error path without a
socket.  The pinned behaviours from the issue: batched ``/predict``
bitwise-identical to sequential single-point ``Model.predict`` calls,
``/metrics`` latency quantiles deterministic under an injected clock,
the per-session ledger record, hash-verified ``/healthz`` degradation,
and tracing-off serving bitwise-unperturbed.  A final asyncio test runs
the real HTTP server against a real socket with a ``max_requests``
budget and checks the deterministic shutdown the CI smoke job relies on.
"""

import asyncio
import json

import numpy as np
import pytest

from repro import obs
from repro.models import registry as reg
from repro.models.rbf import build_rbf_from_tree
from repro.obs.history.ledger import record_from_manifest
from repro.obs.live import LiveCollector, StreamingTraceSink
from repro.serve import ModelService, ServingApp, run_server
from repro.serve import app as app_module

PINNED_NOW = "2026-08-08T00:00:00+00:00"
DIM = 3


def target(x):
    return 1.0 + np.sin(3 * x[:, 0]) + 0.5 * x[:, 1] * x[:, 2]


def make_app(tmp_path, calibrate=True, **app_kwargs):
    """A registry with one registered RBF model and an app serving it."""
    rng = np.random.default_rng(17)
    x = rng.random((60, DIM))
    y = target(x) + rng.normal(0.0, 0.05, len(x))
    model, _ = build_rbf_from_tree(x, y, p_min=2, alpha=4.0)
    if calibrate:
        model.calibrate(x, y)
    registry = reg.ModelRegistry(tmp_path / "registry")
    registry.register(model, benchmark="mcf", sample_size=60, seed=42,
                      parameter_names=["a", "b", "c"], now=PINNED_NOW)
    app = ServingApp(registry, **app_kwargs)
    app.load_models()
    return app


def predict(app, payload):
    return app.handle("POST", "/predict", json.dumps(payload).encode())


@pytest.fixture
def app(tmp_path):
    return make_app(tmp_path)


class TestEndpoints:
    def test_models_lists_the_loaded_service(self, app):
        status, payload = app.handle("GET", "/models")
        assert status == 200
        (record,) = payload["models"]
        assert record["benchmark"] == "mcf"
        assert record["family"] == "rbf"
        assert record["calibrated"] is True
        assert record["dimension"] == DIM
        assert record["parameter_names"] == ["a", "b", "c"]

    def test_predict_single_point_with_provenance(self, app):
        status, payload = predict(app, {"points": [[0.5, 0.5, 0.5]]})
        assert status == 200
        assert payload["count"] == 1
        assert payload["lower"][0] <= payload["values"][0] <= payload["upper"][0]
        assert payload["extrapolated"] == [False]
        assert payload["model"] == app.services[0].entry.sha
        assert payload["request_id"] == "req-000001"

    def test_flat_vector_is_one_point(self, app):
        status, payload = predict(app, {"points": [0.5, 0.5, 0.5]})
        assert status == 200
        assert payload["count"] == 1

    def test_batch_is_bitwise_identical_to_sequential_predict(self, app):
        rng = np.random.default_rng(99)
        points = rng.random((200, DIM))
        status, payload = predict(app, {"points": points.tolist()})
        assert status == 200
        model = app.services[0].model
        sequential = [float(model.predict(p[np.newaxis, :])[0])
                      for p in points]
        # Bitwise equality, surviving the float() round-trip the JSON
        # payload applies — batching changes latency, never the numbers.
        assert payload["values"] == sequential

    def test_provenance_false_returns_bare_values(self, app):
        status, payload = predict(
            app, {"points": [[0.5, 0.5, 0.5]], "provenance": False})
        assert status == 200
        assert "values" in payload
        assert "lower" not in payload

    def test_selector_resolution_sha_prefix_and_benchmark(self, app):
        sha = app.services[0].entry.sha
        for selector in (sha[:8], "mcf"):
            status, payload = predict(
                app, {"points": [[0.5, 0.5, 0.5]], "model": selector})
            assert status == 200
            assert payload["model"] == sha
        status, payload = predict(
            app, {"points": [[0.5, 0.5, 0.5]], "model": "gcc"})
        assert status == 404

    @pytest.mark.parametrize("body,fragment", [
        (None, "empty request body"),
        (b"not json", "invalid JSON"),
        (b"[1, 2, 3]", "JSON object"),
        (b"{}", "missing required field 'points'"),
        (b'{"points": [["a", "b", "c"]]}', "not numeric"),
        (b'{"points": []}', "vector or a matrix"),
        (b'{"points": [[0.5, 0.5]]}', "model expects 3"),
    ])
    def test_predict_rejects_bad_requests(self, app, body, fragment):
        status, payload = app.handle("POST", "/predict", body)
        assert status == 400
        assert fragment in payload["error"]

    def test_oversized_batch_is_rejected(self, app, monkeypatch):
        monkeypatch.setattr(app_module, "MAX_BATCH_POINTS", 10)
        status, payload = predict(app, {"points": [[0.5] * DIM] * 11})
        assert status == 400
        assert "exceeds the 10-point limit" in payload["error"]

    def test_unknown_path_and_wrong_method(self, app):
        assert app.handle("GET", "/nope")[0] == 404
        assert app.handle("GET", "/predict")[0] == 405
        assert app.handle("POST", "/models")[0] == 405
        assert app.handle("GET", "/models?verbose=1")[0] == 200

    def test_uncalibrated_model_conflicts_on_provenance(self, tmp_path):
        app = make_app(tmp_path, calibrate=False)
        status, payload = predict(app, {"points": [[0.5, 0.5, 0.5]]})
        assert status == 409
        assert "not calibrated" in payload["error"]
        status, payload = predict(
            app, {"points": [[0.5, 0.5, 0.5]], "provenance": False})
        assert status == 200

    def test_version_reports_provenance(self, app):
        status, payload = app.handle("GET", "/version")
        assert status == 200
        assert payload["numpy"] == np.__version__
        assert payload["models"]["mcf"]["family"] == "rbf"

    def test_handler_errors_become_structured_500s(self, app, monkeypatch):
        monkeypatch.setattr(
            app, "_models",
            lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        status, payload = app.handle("GET", "/models")
        assert status == 500
        assert "boom" in payload["error"]
        assert int(app.metrics.counters["request_errors"]) == 1


class TestHealthz:
    def test_verified_models_report_ok(self, app):
        status, payload = app.handle("GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert [m["verified"] for m in payload["models"]] == [True]

    def test_in_memory_tampering_degrades_the_service(self, app):
        # Flip one weight of the loaded model: the content hash no longer
        # matches the registry entry, and /healthz must refuse to claim
        # health rather than quietly serve wrong numbers.
        app.services[0].model.weights[0] += 1.0
        status, payload = app.handle("GET", "/healthz")
        assert status == 503
        assert payload["status"] == "degraded"
        assert [m["verified"] for m in payload["models"]] == [False]

    def test_no_models_loaded_is_degraded(self, tmp_path):
        registry = reg.ModelRegistry(tmp_path / "empty")
        app = ServingApp(registry)
        status, payload = app.handle("GET", "/healthz")
        assert status == 503
        assert payload["models"] == []


def scripted_clock(latencies):
    """An ``obs.monotonic`` stand-in: request i takes ``latencies[i]``.

    ``ServingApp.handle`` reads the clock exactly twice per request when
    tracing is off (start and end), so the script yields a pair per
    request with a 1s gap between requests.
    """
    times = []
    t = 0.0
    for latency in latencies:
        times.extend([t, t + latency])
        t += latency + 1.0
    it = iter(times)
    return lambda: next(it)


class TestMetricsAndLedger:
    LATENCIES = [i / 100.0 for i in range(1, 11)]  # 10ms .. 100ms

    def pinned_app(self, tmp_path, monkeypatch, extra_requests=1):
        app = make_app(tmp_path)
        clock = scripted_clock(self.LATENCIES + [0.001] * extra_requests)
        monkeypatch.setattr(obs, "monotonic", clock)
        for _ in self.LATENCIES:
            status, _ = predict(app, {"points": [[0.5, 0.5, 0.5]]})
            assert status == 200
        return app

    def test_metrics_latency_quantiles_are_pinned(self, tmp_path, monkeypatch):
        app = self.pinned_app(tmp_path, monkeypatch)
        status, payload = app.handle("GET", "/metrics")
        assert status == 200
        # The snapshot is taken before the /metrics request's own latency
        # is recorded, so the quantiles cover exactly the 10 predicts.
        latency = payload["latency"]["serve/latency_s"]
        assert latency["count"] == 10
        assert latency["p50"] == pytest.approx(0.050)
        assert latency["p90"] == pytest.approx(0.090)
        assert latency["p99"] == pytest.approx(0.100)
        assert payload["counters"]["requests_total"] == 10.0
        assert payload["counters"]["points_predicted"] == 10.0
        assert payload["gauges"]["models_loaded"] == 1.0

    def test_session_ledger_record_is_pinned(self, tmp_path, monkeypatch):
        app = self.pinned_app(tmp_path, monkeypatch)
        base = obs.build_manifest("serve", extra={"registry": "r"})
        manifest = obs.snapshot_manifest(
            base, metrics=app.metrics.snapshot(), wall_time_s=12.5,
            extra=app.session_fields())
        record = record_from_manifest(manifest, trace_path="trace.jsonl")
        assert record["command"] == "serve"
        assert record["requests_served"] == 10
        assert record["request_errors"] == 0
        # session_fields quantiles cover the 10 scripted latencies.
        assert record["latency_p50_ms"] == 50.0
        assert record["latency_p90_ms"] == 90.0
        assert record["latency_p99_ms"] == 100.0
        assert record["wall_time_s"] == 12.5
        assert record["trace_path"] == "trace.jsonl"

    def test_empty_session_has_null_quantiles(self, app):
        fields = app.session_fields()
        assert fields["requests_served"] == 0
        assert fields["latency_p50_ms"] is None


class TestRequestTracing:
    def test_spans_stream_per_request(self, app, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = StreamingTraceSink(path, header={"command": "serve"})
        collector = LiveCollector(sink)
        obs.activate(collector)
        try:
            predict(app, {"points": [[0.5, 0.5, 0.5]] * 3})
            app.handle("GET", "/healthz")
        finally:
            obs.deactivate(collector)
            sink.close()
        data = obs.read_trace(path)
        assert [r.name for r in data.roots] == ["serve/request"] * 2
        assert data.roots[0].attrs["request"] == "req-000001"
        assert data.roots[0].attrs["path"] == "/predict"
        (child,) = data.roots[0].children
        assert child.name == "serve/predict"
        assert child.attrs["points"] == 3
        assert data.roots[1].children == []  # healthz has no predict span
        assert collector.roots == []  # streamed and dropped

    def test_tracing_off_serving_is_bitwise_unperturbed(self, tmp_path):
        points = np.random.default_rng(5).random((40, DIM)).tolist()
        app_off = make_app(tmp_path / "off")
        _, untraced = predict(app_off, {"points": points})
        app_on = make_app(tmp_path / "on")
        with obs.collecting():
            _, traced = predict(app_on, {"points": points})
        for key in ("values", "lower", "upper", "extrapolated"):
            assert untraced[key] == traced[key]


class TestHTTPServer:
    @staticmethod
    async def _request(host, port, method, path, body=b""):
        reader, writer = await asyncio.open_connection(host, port)
        head = (f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Length: {len(body)}\r\n\r\n")
        writer.write(head.encode() + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=10)
        writer.close()
        status = int(raw.split(b" ", 2)[1])
        return status, json.loads(raw.split(b"\r\n\r\n", 1)[1])

    def test_real_socket_roundtrip_with_budget_shutdown(self, tmp_path):
        app = make_app(tmp_path, max_requests=3)

        async def scenario():
            ready = asyncio.get_running_loop().create_future()
            server = asyncio.ensure_future(
                run_server(app, "127.0.0.1", 0, ready))
            host, port = await asyncio.wait_for(ready, timeout=10)
            health = await self._request(host, port, "GET", "/healthz")
            body = json.dumps({"points": [[0.5, 0.5, 0.5]] * 4}).encode()
            pred = await self._request(host, port, "POST", "/predict", body)
            metrics = await self._request(host, port, "GET", "/metrics")
            # Budget spent: the server coroutine finishes on its own —
            # the deterministic shutdown the CI smoke job waits on.
            await asyncio.wait_for(server, timeout=10)
            return health, pred, metrics

        health, pred, metrics = asyncio.run(scenario())
        assert health[0] == 200 and health[1]["status"] == "ok"
        assert pred[0] == 200 and pred[1]["count"] == 4
        assert metrics[0] == 200
        assert metrics[1]["counters"]["points_predicted"] == 4.0
        assert app.done and app.requests_served == 3

    def test_malformed_requests_get_400_without_spending_budget(
            self, tmp_path):
        app = make_app(tmp_path, max_requests=1)

        async def scenario():
            ready = asyncio.get_running_loop().create_future()
            server = asyncio.ensure_future(
                run_server(app, "127.0.0.1", 0, ready))
            host, port = await asyncio.wait_for(ready, timeout=10)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GARBAGE\r\n\r\n")  # no target: malformed line
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), timeout=10)
            writer.close()
            garbage_status = int(raw.split(b" ", 2)[1])
            # The malformed request never reached the app, so the budget
            # is untouched and one real request still gets served.
            health = await self._request(host, port, "GET", "/healthz")
            await asyncio.wait_for(server, timeout=10)
            return garbage_status, health

        garbage_status, health = asyncio.run(scenario())
        assert garbage_status == 400
        assert health[0] == 200
        assert app.requests_served == 1


class TestAccessLogIntegration:
    def test_one_record_per_request(self, tmp_path):
        from repro.obs.live import AccessLog
        log_path = tmp_path / "access.jsonl"
        app = make_app(tmp_path, access_log=AccessLog(log_path))
        predict(app, {"points": [[0.5, 0.5, 0.5]] * 7})
        app.handle("GET", "/nope")
        app.access_log.close()
        records = [json.loads(l) for l in log_path.read_text().splitlines()]
        assert [(r["path"], r["status"], r["points"]) for r in records] == \
            [("/predict", 200, 7), ("/nope", 404, 0)]
        assert records[0]["request"] == "req-000001"
        assert records[0]["latency_s"] >= 0.0


def test_model_service_describe_shape(tmp_path):
    app = make_app(tmp_path)
    service = app.services[0]
    assert isinstance(service, ModelService)
    record = service.describe()
    assert record["sha"] == service.entry.sha
    assert record["calibrated"] and record["dimension"] == DIM
