"""Cycle-accounting attribution suite.

The attribution contract has three legs:

* **exactness** — every folded CPI stack's components sum *bitwise* to
  the measured cycle count (all timestamps are integer-valued floats, so
  the telescoping gap sum is exact), for every SPEC profile at three
  contrasting design points;
* **observer-only** — ``collect_attribution=True`` perturbs nothing: the
  attributed CPI reprs equal the pinned pre-attribution values from
  :mod:`tests.test_vectorised`;
* **causality** — starving a structural resource (ROB, IQ, LSQ, FUs)
  surfaces cycles in exactly that component, and a perfect D-cache
  removes the L2/DRAM components.

Plus unit coverage of the folding, interval streaming, serialisation
and rendering helpers, and the empty-trace ``SimResult`` pin.
"""

import math

import pytest

from repro.core.design_space import paper_design_space
from repro.simulator.attribution import (
    COMPONENTS,
    TAG_BASE,
    TAG_DEP,
    TAG_DRAM,
    CPIStack,
    build_intervals,
    fold_stack,
    read_intervals_jsonl,
    render_stack_table,
    write_intervals_jsonl,
)
from repro.simulator.config import ProcessorConfig
from repro.simulator.ooo_core import OutOfOrderCore
from repro.simulator.simulator import Simulator
from repro.workloads.spec2000 import get_trace
from tests.test_vectorised import PIN_CPIS, PIN_POINTS

PIN_TRACE_LENGTH = 4096


def _attributed(config, trace):
    """Run one attributed simulation, returning (SimResult, Attribution)."""
    core = OutOfOrderCore(config)
    result = core.run(trace, collect_attribution=True)
    return result, core.attribution


# ---------------------------------------------------------------------------
# Exactness + observer-only: all 8 SPEC profiles at 3 design points
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bench_name", sorted(PIN_CPIS))
def test_stack_exact_and_cpi_pinned(bench_name):
    """Components sum bitwise to cycles AND attributed CPI is unperturbed.

    Comparing the attributed run's CPI repr against the *pre-attribution*
    pinned values proves in one pass both that attribution is a pure
    observer and that the off-path contract of
    ``test_vectorised.test_cpi_bitwise_pinned`` still holds with the
    observer attached.
    """
    space = paper_design_space()
    trace = get_trace(bench_name, PIN_TRACE_LENGTH, 0)
    got = []
    for point in PIN_POINTS:
        config = ProcessorConfig.from_design_point(space.resolve(dict(point)))
        result, attribution = _attributed(config, trace)
        stack = attribution.stack()
        # Bitwise exactness: the defining invariant of the stack.
        assert sum(stack.components.values()) == stack.cycles
        assert stack.cycles == result.cycles
        assert stack.instructions == result.instructions
        assert all(v >= 0.0 for v in stack.components.values())
        assert all(float(v).is_integer() for v in stack.components.values())
        # SimResult carries the same stack verbatim.
        assert result.stack == stack.as_dict()
        got.append(repr(result.cpi))
    assert got == PIN_CPIS[bench_name]


def test_intervals_partition_the_run():
    """Windows tile the measured region: cycles, instructions, components."""
    trace = get_trace("mcf", 2048, 0)
    _, attribution = _attributed(ProcessorConfig(), trace)
    stack = attribution.stack()
    for k in (1, 64, 500, 5000):
        intervals = attribution.intervals(k)
        assert sum(iv.instructions for iv in intervals) == stack.instructions
        assert sum(iv.cycles for iv in intervals) == stack.cycles
        for name in COMPONENTS:
            assert (sum(iv.components[name] for iv in intervals)
                    == stack.components[name]), name
        for iv in intervals:
            assert sum(iv.components.values()) == iv.cycles
        assert [iv.index for iv in intervals] == list(range(len(intervals)))


# ---------------------------------------------------------------------------
# Causality: starved resources surface in their own component
# ---------------------------------------------------------------------------


def _stack_for(**overrides):
    trace = get_trace("mcf", 2048, 0)
    _, attribution = _attributed(ProcessorConfig(**overrides), trace)
    return attribution.stack().components


class TestStructuralResponse:
    def test_tiny_rob_pays_rob_cycles(self):
        assert _stack_for(rob_size=8, iq_size=4, lsq_size=4)["rob"] > 0.0

    def test_tiny_iq_pays_iq_cycles(self):
        assert _stack_for(rob_size=64, iq_size=2, lsq_size=16)["iq"] > 0.0

    def test_tiny_lsq_pays_lsq_cycles(self):
        assert _stack_for(rob_size=64, iq_size=16, lsq_size=2)["lsq"] > 0.0

    def test_starved_fus_pay_fu_cycles(self):
        assert _stack_for(num_ialu=1, num_mem_ports=1)["fu"] > 0.0

    def test_perfect_dcache_has_no_l2_or_dram_stalls(self):
        stack = _stack_for(perfect_dcache=True)
        assert stack["l2"] == 0.0
        assert stack["dram"] == 0.0


# ---------------------------------------------------------------------------
# fold_stack / build_intervals unit behaviour
# ---------------------------------------------------------------------------


class TestFolding:
    # Three instructions: gaps 2 (dram), 0, 3 (dep); drain lands in base.
    TAGS = [TAG_DRAM, TAG_BASE, TAG_DEP]
    COMMIT = [12.0, 12.0, 15.0]

    def test_fold_telescopes_with_drain(self):
        stack = fold_stack(self.TAGS, self.COMMIT, 0, 10.0)
        assert stack.cycles == 6.0  # 15 + 1 - 10
        assert stack.instructions == 3
        assert stack.components["dram"] == 2.0
        assert stack.components["dep"] == 3.0
        assert stack.components["base"] == 1.0  # drain only; zero gap adds 0
        assert sum(stack.components.values()) == stack.cycles

    def test_fold_respects_warmup_boundary(self):
        stack = fold_stack(self.TAGS, self.COMMIT, 1, self.COMMIT[0])
        assert stack.instructions == 2
        assert stack.cycles == 4.0  # 15 + 1 - 12
        assert stack.components["dep"] == 3.0
        assert stack.components["dram"] == 0.0

    def test_fold_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            fold_stack([TAG_BASE], [1.0, 2.0], 0, 0.0)
        with pytest.raises(ValueError):
            fold_stack(self.TAGS, self.COMMIT, 3, 0.0)

    def test_intervals_split_and_carry_drain_last(self):
        intervals = build_intervals(self.TAGS, self.COMMIT, 0, 10.0, 2)
        assert [iv.instructions for iv in intervals] == [2, 1]
        assert intervals[0].components["dram"] == 2.0
        assert intervals[1].components["dep"] == 3.0
        assert intervals[1].components["base"] == 1.0  # drain in last window
        assert sum(iv.cycles for iv in intervals) == 6.0

    def test_intervals_reject_bad_window(self):
        with pytest.raises(ValueError):
            build_intervals(self.TAGS, self.COMMIT, 0, 0.0, 0)

    def test_cpi_stack_summaries(self):
        stack = CPIStack(
            components={name: 0.0 for name in COMPONENTS} | {
                "base": 2.0, "dram": 6.0, "icache": 2.0},
            cycles=10.0,
            instructions=5,
        )
        assert stack.cpi == 2.0
        assert stack.cpi_components()["dram"] == pytest.approx(1.2)
        assert stack.fractions()["base"] == pytest.approx(0.2)
        assert stack.memory_fraction() == pytest.approx(0.8)
        assert stack.frontend_fraction() == pytest.approx(0.2)


# ---------------------------------------------------------------------------
# Serialisation + rendering
# ---------------------------------------------------------------------------


class TestIntervalStream:
    def test_jsonl_roundtrip(self, tmp_path):
        trace = get_trace("twolf", 1024, 0)
        _, attribution = _attributed(ProcessorConfig(), trace)
        intervals = attribution.intervals(256)
        path = tmp_path / "intervals.jsonl"
        count = write_intervals_jsonl(
            path, intervals, benchmark="twolf", interval=256)
        assert count == len(intervals)
        header, loaded = read_intervals_jsonl(path)
        assert header["kind"] == "cpi_intervals"
        assert header["benchmark"] == "twolf"
        assert loaded == intervals

    def test_reader_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind": "trace"}\n')
        with pytest.raises(ValueError):
            read_intervals_jsonl(path)

    def test_write_is_deterministic(self, tmp_path):
        trace = get_trace("ammp", 512, 0)
        _, attribution = _attributed(ProcessorConfig(), trace)
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_intervals_jsonl(a, attribution.intervals(128), z=1, a=2)
        write_intervals_jsonl(b, attribution.intervals(128), z=1, a=2)
        assert a.read_bytes() == b.read_bytes()


class TestRenderStackTable:
    def _stacks(self):
        trace = get_trace("mcf", 1024, 0)
        _, attribution = _attributed(ProcessorConfig(), trace)
        return {"default": attribution.stack()}

    def test_table_lists_all_components(self):
        text = render_stack_table(self._stacks())
        for name in COMPONENTS:
            assert name in text
        assert "total" in text

    def test_normalized_totals_are_one(self):
        text = render_stack_table(self._stacks(), normalize=True)
        assert "1.0000" in text

    def test_empty_mapping(self):
        assert render_stack_table({}) == "(no stacks)"


# ---------------------------------------------------------------------------
# Empty-trace SimResult pin (the early return populates everything)
# ---------------------------------------------------------------------------


class TestEmptyTrace:
    def _empty(self):
        return get_trace("mcf", 64, 0).slice(0, 0)

    def test_empty_trace_result_is_fully_populated(self):
        result = Simulator(ProcessorConfig()).run(self._empty())
        assert (result.cpi, result.cycles, result.instructions) == (0.0, 0.0, 0)
        assert result.extra == {
            "il1_accesses": 0.0, "dl1_accesses": 0.0,
            "l2_accesses": 0.0, "memory_requests": 0.0,
        }
        assert result.stack is None
        for value in result.as_dict().values():
            if isinstance(value, float):
                assert math.isfinite(value)

    def test_empty_trace_with_attribution_yields_zero_stack(self):
        result = Simulator(ProcessorConfig()).run(
            self._empty(), collect_attribution=True)
        assert result.stack == {name: 0.0 for name in COMPONENTS}
        assert result.as_dict()["stack_base"] == 0.0
