"""Streaming telemetry: sink crash-safety, rotation, windows, snapshots.

The live half of ``repro.obs`` exists for processes that never exit, so
its tests centre on mid-flight behaviour: a trace file must be readable
while the server is still writing it, a killed writer must cost at most
one (counted) torn line, rotation must never split a span tree across
segments, and manifest snapshots must stay schema-identical and monotone
so ledger records from a long session remain comparable.
"""

import json

import pytest

from repro import obs
from repro.obs.live import (
    AccessLog,
    LiveCollector,
    MetricsWindow,
    StreamingTraceSink,
    snapshot_manifest,
)
from repro.obs.tracing import SpanNode


def fake_clock(start=0.0):
    """A manually advanced clock: ``clock.advance(dt)`` then ``clock()``."""
    state = {"now": start}

    def clock():
        return state["now"]

    clock.advance = lambda dt: state.__setitem__("now", state["now"] + dt)
    return clock


def make_request_tree(i):
    """One served request: a root span with a nested predict span."""
    root = SpanNode("serve/request", attrs={"request": f"req-{i:06d}"},
                    start=float(i), end=i + 1.0)
    child = SpanNode("serve/predict", attrs={"points": 10},
                     start=i + 0.1, end=i + 0.9)
    root.children.append(child)
    return root


class TestStreamingSink:
    def test_trace_is_readable_mid_flight(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = StreamingTraceSink(path, header={"command": "serve"})
        sink.emit(make_request_tree(0))
        sink.emit(make_request_tree(1))
        # The sink is still open — no final metrics line yet — but every
        # emitted line is complete, so a strict read already succeeds.
        mid = obs.read_trace(path, strict=True)
        assert mid.header["command"] == "serve"
        assert [r.name for r in mid.roots] == ["serve/request"] * 2
        assert [c.name for r in mid.roots for c in r.children] == \
            ["serve/predict"] * 2
        assert mid.skipped_lines == 0
        assert mid.metrics == {}
        sink.close()
        sealed = obs.read_trace(path)
        assert sealed.metrics["type"] == "metrics"
        assert sink.closed

    def test_parents_precede_children_in_emission_order(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with StreamingTraceSink(path) as sink:
            for i in range(3):
                sink.emit(make_request_tree(i))
        spans = [json.loads(line) for line in path.read_text().splitlines()
                 if json.loads(line).get("type") == "span"]
        assert [s["id"] for s in spans] == list(range(6))
        for s in spans:
            if s["parent"] is not None:
                assert s["parent"] < s["id"]

    def test_torn_final_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = StreamingTraceSink(path, header={"command": "serve"})
        for i in range(3):
            sink.emit(make_request_tree(i))
        # Simulate a writer killed mid-record: a partial JSON object with
        # no newline at the end of the file.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "span", "id": 99, "par')
        with pytest.raises(ValueError):
            obs.read_trace(path, strict=True)
        recovered = obs.read_trace(path, strict=False)
        assert recovered.skipped_lines == 1
        assert len(recovered.roots) == 3  # every complete span survives
        assert all(len(r.children) == 1 for r in recovered.roots)

    def test_corruption_before_the_final_line_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with StreamingTraceSink(path) as sink:
            sink.emit(make_request_tree(0))
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-5]  # tear a span in the middle of the file
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            obs.read_trace(path, strict=False)

    def test_rotated_segments_are_independent_complete_traces(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = StreamingTraceSink(
            path, header={"command": "serve"}, max_bytes=400,
            metrics_snapshot=lambda: {"counters": {"requests_total": 1.0}})
        for i in range(6):
            sink.emit(make_request_tree(i))
        assert len(sink.rotations) >= 2
        assert sink.rotations[0].name == "trace.001.jsonl"
        sink.close()
        all_roots = []
        for segment in [*sink.rotations, path]:
            data = obs.read_trace(segment, strict=True)
            # Each sealed segment is a complete, self-describing trace:
            # header first, metrics line last, no span torn across files.
            assert data.header["command"] == "serve"
            assert data.metrics["counters"] == {"requests_total": 1.0}
            for root in data.roots:
                assert [c.name for c in root.children] == ["serve/predict"]
            all_roots.extend(data.roots)
        assert len(all_roots) == 6  # nothing lost, nothing duplicated
        assert sink.spans_emitted == 12

    def test_rotation_happens_only_between_subtrees(self, tmp_path):
        # Even a subtree far larger than max_bytes lands in one segment.
        path = tmp_path / "trace.jsonl"
        sink = StreamingTraceSink(path, max_bytes=100)
        root = make_request_tree(0)
        for j in range(20):
            root.children.append(
                SpanNode(f"serve/stage-{j}", start=0.0, end=0.1))
        sink.emit(root)
        sink.close()
        segment = sink.rotations[0] if sink.rotations else path
        data = obs.read_trace(segment)
        assert len(data.roots) == 1
        assert len(data.roots[0].children) == 21


class TestLiveCollector:
    def test_streams_and_drops_completed_roots(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = StreamingTraceSink(path)
        clock = fake_clock()
        col = LiveCollector(sink, clock=clock)
        for i in range(5):
            root = col.start_span("serve/request", {"request": i})
            clock.advance(0.25)
            child = col.start_span("serve/predict")
            clock.advance(0.5)
            col.end_span(child)
            col.end_span(root)
        # Memory stays O(open spans): everything has been streamed out.
        assert col.roots == []
        assert sink.spans_emitted == 10
        sink.close()
        data = obs.read_trace(path)
        assert len(data.roots) == 5
        assert data.roots[0].children[0].duration == pytest.approx(0.5)

    def test_buffered_events_are_drained_with_the_roots(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = StreamingTraceSink(path)
        col = LiveCollector(sink, clock=fake_clock())
        root = col.start_span("serve/request")
        col.record_event("failure", stage="serve", error="boom")
        col.end_span(root)
        assert col.events == []
        sink.close()
        data = obs.read_trace(path)
        assert [e["type"] for e in data.events] == ["failure"]
        assert data.events[0]["error"] == "boom"

    def test_without_a_sink_it_is_a_plain_collector(self):
        col = LiveCollector(clock=fake_clock())
        root = col.start_span("serve/request")
        col.end_span(root)
        assert [r.name for r in col.roots] == ["serve/request"]


class TestMetricsWindow:
    def test_rates_and_latency_quantiles(self):
        clock = fake_clock()
        registry = obs.MetricsRegistry()
        window = MetricsWindow(registry, clock=clock)
        clock.advance(2.0)
        for _ in range(10):
            registry.inc("requests_total")
        for ms in range(1, 101):
            registry.observe("serve/latency_s", ms / 1000.0)
        snap = window.snapshot()
        assert snap["counters"]["requests_total"] == 10.0
        assert snap["window"]["elapsed_s"] == pytest.approx(2.0)
        assert snap["window"]["rates"]["requests_total"] == pytest.approx(5.0)
        latency = snap["latency"]["serve/latency_s"]
        assert latency["count"] == 100
        assert latency["p50"] == pytest.approx(0.050)
        assert latency["p90"] == pytest.approx(0.090)
        assert latency["p99"] == pytest.approx(0.099)

    def test_zero_elapsed_window_reports_zero_rates(self):
        clock = fake_clock()
        registry = obs.MetricsRegistry()
        window = MetricsWindow(registry, clock=clock)
        registry.inc("requests_total", 7.0)
        snap = window.snapshot()  # clock has not advanced
        assert snap["window"]["elapsed_s"] == 0.0
        assert snap["window"]["rates"]["requests_total"] == 0.0

    def test_rates_are_per_window_not_cumulative(self):
        clock = fake_clock()
        registry = obs.MetricsRegistry()
        window = MetricsWindow(registry, clock=clock)
        clock.advance(1.0)
        registry.inc("requests_total", 8.0)
        first = window.snapshot()
        clock.advance(4.0)
        registry.inc("requests_total", 8.0)
        second = window.snapshot()
        assert first["window"]["rates"]["requests_total"] == 8.0
        assert second["window"]["rates"]["requests_total"] == 2.0
        assert second["counters"]["requests_total"] == 16.0


class TestAccessLog:
    def test_one_flushed_record_per_request(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = AccessLog(path)
        log.log(request="req-000001", method="POST", path="/predict",
                status=200, points=10)
        # Flushed immediately: readable before close, e.g. by tail -f.
        first = json.loads(path.read_text().splitlines()[0])
        assert first["request"] == "req-000001"
        log.log(request="req-000002", method="GET", path="/healthz",
                status=200, points=0)
        log.close()
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["path"] for r in records] == ["/predict", "/healthz"]
        assert log.records_written == 2


class TestSnapshotManifest:
    def test_successive_snapshots_are_monotone_and_schema_identical(self):
        base = obs.build_manifest(
            "serve", seed=3, metrics={"requests_total": 0.0},
            wall_time_s=1.0, cpu_time_s=0.25, extra={"requests_served": 0})
        first = snapshot_manifest(
            base, metrics={"requests_total": 4.0}, wall_time_s=2.5,
            cpu_time_s=1.0, extra={"requests_served": 4})
        # A later snapshot reporting a *smaller* wall/cpu reading (clock
        # skew, duplicated flush) must never move the manifest backwards.
        second = snapshot_manifest(
            first, metrics={"requests_total": 9.0}, wall_time_s=2.0,
            cpu_time_s=0.5, extra={"requests_served": 9})
        assert set(first) == set(second) == set(base)
        assert second["wall_time_s"] == 2.5
        assert second["cpu_time_s"] == 1.0
        assert second["requests_served"] == 9
        assert second["metrics"]["requests_total"] == 9.0
        # Identity fields survive untouched; the base is never mutated.
        assert second["command"] == "serve"
        assert second["seed"] == 3
        assert base["requests_served"] == 0
        assert base["wall_time_s"] == 1.0

    def test_snapshot_defaults_keep_previous_cost_readings(self):
        base = obs.build_manifest("serve", wall_time_s=3.0, cpu_time_s=2.0)
        snap = snapshot_manifest(base)  # no new wall reading supplied
        assert snap["wall_time_s"] == 3.0
        assert snap["cpu_time_s"] >= 2.0  # process CPU time only grows
