"""Tests for branch prediction: bimodal, gshare, tournament, BTB."""

import numpy as np
import pytest

from repro.simulator.branch import (
    BTB,
    Bimodal,
    BranchUnit,
    GShare,
    PREDICT_BTB_MISS,
    PREDICT_MISPREDICT,
    PREDICT_OK,
    Tournament,
)
from repro.simulator.config import ProcessorConfig


class TestBimodal:
    def test_trains_to_bias(self):
        b = Bimodal(64)
        for _ in range(4):
            b.update(0x100, True)
        assert b.predict(0x100) is True
        for _ in range(4):
            b.update(0x100, False)
        assert b.predict(0x100) is False

    def test_counters_saturate(self):
        b = Bimodal(64)
        for _ in range(100):
            b.update(0x100, True)
        # One contrary outcome must not flip a saturated counter.
        b.update(0x100, False)
        assert b.predict(0x100) is True

    def test_distinct_pcs_independent(self):
        b = Bimodal(1024)
        b.update(0x100, True)
        b.update(0x100, True)
        b.update(0x2000, False)
        b.update(0x2000, False)
        assert b.predict(0x100) is True
        assert b.predict(0x2000) is False

    def test_pow2_required(self):
        with pytest.raises(ValueError):
            Bimodal(100)


class TestGShare:
    def test_learns_alternating_pattern(self):
        # T,N,T,N... is history-predictable; gshare should converge.
        g = GShare(1024, history_bits=4)
        outcomes = [bool(i % 2) for i in range(400)]
        wrong = 0
        for i, t in enumerate(outcomes):
            if g.predict(0x40) != t and i > 100:
                wrong += 1
            g.update(0x40, t)
        assert wrong < 10

    def test_history_shifts(self):
        g = GShare(64, history_bits=3)
        g.update(0x10, True)
        g.update(0x10, True)
        g.update(0x10, False)
        assert g._history == 0b110

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            GShare(100)
        with pytest.raises(ValueError):
            GShare(64, history_bits=-1)


class TestTournament:
    def test_beats_gshare_on_biased_iid_stream(self):
        rng = np.random.default_rng(3)
        outcomes = rng.random(2000) < 0.9
        pcs = (rng.integers(0, 64, size=2000) * 24 + 0x1000)
        tour = Tournament(4096, 10)
        gsh = GShare(4096, 10)
        tour_wrong = gsh_wrong = 0
        for pc, t in zip(pcs.tolist(), outcomes.tolist()):
            if tour.predict(pc) != t:
                tour_wrong += 1
            if gsh.predict(pc) != t:
                gsh_wrong += 1
            tour.update(pc, t)
            gsh.update(pc, t)
        assert tour_wrong < gsh_wrong

    def test_accuracy_tracks_site_bias(self):
        rng = np.random.default_rng(4)
        tour = Tournament(4096, 10)
        wrong = 0
        n = 3000
        for i in range(n):
            pc = 0x100 + (i % 16) * 36
            t = bool(rng.random() < 0.92)
            if tour.predict(pc) != t:
                wrong += 1
            tour.update(pc, t)
        # 2-bit counters on a 92%-biased stream: mispredicts well below 20%.
        assert wrong / n < 0.20


class TestBTB:
    def test_miss_then_hit(self):
        btb = BTB(64)
        assert btb.lookup(0x400) is False
        btb.insert(0x400)
        assert btb.lookup(0x400) is True

    def test_aliasing_eviction(self):
        btb = BTB(64)
        btb.insert(0x400)
        btb.insert(0x400 + 64 * 4)  # same index, different tag
        assert btb.lookup(0x400) is False


class TestBranchUnit:
    def _unit(self):
        return BranchUnit(ProcessorConfig())

    def test_correct_prediction_no_redirect(self):
        u = self._unit()
        # Not-taken branches predicted correctly after training.
        for _ in range(8):
            u.predict(0x500, taken=False, conditional=True)
        assert u.predict(0x500, taken=False, conditional=True) == PREDICT_OK

    def test_direction_mispredict_flagged(self):
        u = self._unit()
        for _ in range(8):
            u.predict(0x500, taken=False, conditional=True)
        outcome = u.predict(0x500, taken=True, conditional=True)
        assert outcome == PREDICT_MISPREDICT
        assert u.mispredicted >= 1

    def test_btb_miss_on_first_taken_jump(self):
        u = self._unit()
        assert u.predict(0x600, taken=True, conditional=False) == PREDICT_BTB_MISS
        assert u.predict(0x600, taken=True, conditional=False) == PREDICT_OK

    def test_btb_miss_not_counted_as_mispredict(self):
        u = self._unit()
        u.predict(0x600, taken=True, conditional=False)
        assert u.mispredicted == 0
        assert u.btb_misses == 1

    def test_mispredict_rate_counts_conditionals_only(self):
        u = self._unit()
        u.predict(0x600, taken=True, conditional=False)
        assert u.conditional == 0
        assert u.mispredict_rate == 0.0
