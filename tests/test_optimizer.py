"""Tests for best-of-N sample selection and knee detection."""

import numpy as np
import pytest

from repro.sampling.discrepancy import centered_l2_discrepancy
from repro.sampling.lhs import latin_hypercube
from repro.sampling.optimizer import best_lhs_sample, discrepancy_curve, find_knee
from repro.util.rng import make_rng


class TestBestLhsSample:
    def test_beats_typical_single_sample(self, small_space):
        best = best_lhs_sample(small_space, 20, seed=1, candidates=16)
        singles = [
            centered_l2_discrepancy(latin_hypercube(small_space, 20, make_rng(1, "z", i)))
            for i in range(8)
        ]
        assert best.discrepancy <= np.median(singles)

    def test_monotone_in_candidates(self, small_space):
        few = best_lhs_sample(small_space, 20, seed=1, candidates=2)
        many = best_lhs_sample(small_space, 20, seed=1, candidates=32)
        # The candidate streams are nested by index, so more candidates can
        # only improve the best discrepancy.
        assert many.discrepancy <= few.discrepancy

    def test_deterministic(self, small_space):
        a = best_lhs_sample(small_space, 15, seed=3, candidates=8)
        b = best_lhs_sample(small_space, 15, seed=3, candidates=8)
        np.testing.assert_array_equal(a.points, b.points)

    def test_metadata(self, small_space):
        s = best_lhs_sample(small_space, 15, seed=3, candidates=8)
        assert s.sample_size == 15
        assert s.candidates == 8
        assert s.points.shape == (15, 3)

    def test_invalid_candidates(self, small_space):
        with pytest.raises(ValueError):
            best_lhs_sample(small_space, 10, seed=0, candidates=0)

    def test_custom_metric(self, small_space):
        # With a constant metric, the first candidate is kept.
        s = best_lhs_sample(small_space, 10, seed=0, candidates=4, metric=lambda p: 1.0)
        assert s.discrepancy == 1.0


class TestDiscrepancyCurve:
    def test_decreasing_overall(self, small_space):
        curve = discrepancy_curve(small_space, [10, 40, 160], seed=2, candidates=8)
        values = [d for _, d in curve]
        assert values[0] > values[-1]

    def test_sizes_preserved(self, small_space):
        curve = discrepancy_curve(small_space, [10, 20], seed=2, candidates=4)
        assert [s for s, _ in curve] == [10, 20]


class TestFindKnee:
    def test_sharp_elbow(self):
        x = [1, 2, 3, 4, 5, 6, 7, 8]
        y = [10, 5, 2.5, 1.5, 1.4, 1.3, 1.2, 1.1]
        knee = find_knee(x, y)
        assert 2 <= knee <= 4

    def test_exponential_decay(self):
        x = np.arange(1, 50, dtype=float)
        y = np.exp(-x / 8.0)
        knee = find_knee(x, y)
        assert 4 <= knee <= 16

    def test_straight_line_returns_interior_point(self):
        x = [1.0, 2.0, 3.0]
        y = [3.0, 2.0, 1.0]
        knee = find_knee(x, y)
        assert 1.0 <= knee <= 3.0

    def test_short_input(self):
        assert find_knee([1, 2], [5, 3]) == 2

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            find_knee([1, 2, 3], [1, 2])

    def test_flat_curve_does_not_crash(self):
        knee = find_knee([1, 2, 3, 4], [1.0, 1.0, 1.0, 1.0])
        assert 1 <= knee <= 4


class TestMaximin:
    def test_min_pairwise_distance_simple(self):
        import numpy as np
        from repro.sampling.optimizer import min_pairwise_distance

        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 0.5]])
        assert min_pairwise_distance(pts) == pytest.approx(0.5)

    def test_duplicates_give_zero(self):
        import numpy as np
        from repro.sampling.optimizer import min_pairwise_distance

        pts = np.array([[0.3, 0.3], [0.3, 0.3]])
        assert min_pairwise_distance(pts) == 0.0

    def test_requires_two_points(self):
        import numpy as np
        from repro.sampling.optimizer import min_pairwise_distance

        with pytest.raises(ValueError):
            min_pairwise_distance(np.array([[0.1, 0.2]]))

    def test_maximin_optimised_sample_spreads_points(self, small_space):
        from repro.sampling.optimizer import min_pairwise_distance, negative_maximin

        maximin = best_lhs_sample(small_space, 16, seed=4, candidates=32,
                                  metric=negative_maximin)
        plain = best_lhs_sample(small_space, 16, seed=4, candidates=1)
        assert (min_pairwise_distance(maximin.points)
                >= min_pairwise_distance(plain.points))
