"""Tests for the L2 discrepancy measures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.discrepancy import centered_l2_discrepancy, star_l2_discrepancy
from repro.sampling.lhs import latin_hypercube
from repro.util.rng import make_rng


def test_star_l2_single_center_point_1d():
    # Closed-form check: for P = {0.5} in 1-D, Warnock's formula gives
    # D^2 = 1/3 - (2/1)*(1-0.25)/2 + (1-0.5) = 1/3 - 0.75 + 0.5 = 1/12.
    value = star_l2_discrepancy(np.array([[0.5]]))
    assert value == pytest.approx(np.sqrt(1.0 / 12.0))


def test_centered_l2_single_center_point_1d():
    # For the centered discrepancy at x = 0.5, |x - 1/2| = 0, so
    # CD^2 = 13/12 - 2*1 + 1 = 1/12.
    value = centered_l2_discrepancy(np.array([[0.5]]))
    assert value == pytest.approx(np.sqrt(1.0 / 12.0))


def test_larger_uniform_grid_has_lower_discrepancy():
    fine = np.linspace(0.05, 0.95, 19)[:, None]
    coarse = np.linspace(0.1, 0.9, 5)[:, None]
    assert centered_l2_discrepancy(fine) < centered_l2_discrepancy(coarse)


def test_clustered_sample_is_worse_than_spread_sample():
    spread = np.linspace(0.05, 0.95, 10)[:, None]
    clustered = np.full((10, 1), 0.1) + np.linspace(0, 0.01, 10)[:, None]
    assert centered_l2_discrepancy(spread) < centered_l2_discrepancy(clustered)


def test_lhs_beats_random_on_average(small_space):
    # The motivating property from the paper: LHS covers the space better
    # than plain random sampling (Fang et al. 2002).
    lhs_vals, rand_vals = [], []
    for i in range(10):
        rng = make_rng(100, i)
        lhs_vals.append(centered_l2_discrepancy(latin_hypercube(small_space, 20, rng)))
        rand_vals.append(centered_l2_discrepancy(rng.random((20, 3))))
    assert np.mean(lhs_vals) < np.mean(rand_vals)


def test_rejects_points_outside_unit_cube():
    with pytest.raises(ValueError):
        centered_l2_discrepancy(np.array([[1.5, 0.2]]))
    with pytest.raises(ValueError):
        star_l2_discrepancy(np.array([[-0.1]]))


def test_rejects_empty_sample():
    with pytest.raises(ValueError):
        centered_l2_discrepancy(np.zeros((0, 3)))


def test_reflection_invariance_of_centered_discrepancy(rng):
    # CD2 is invariant under coordinate reflection x -> 1 - x; the star
    # discrepancy (anchored at the origin) is not.
    pts = rng.random((15, 3))
    reflected = 1.0 - pts
    assert centered_l2_discrepancy(pts) == pytest.approx(
        centered_l2_discrepancy(reflected), rel=1e-9
    )


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(min_value=1, max_value=12),
    n=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_discrepancies_are_finite_and_nonnegative(p, n, seed):
    pts = np.random.default_rng(seed).random((p, n))
    for fn in (centered_l2_discrepancy, star_l2_discrepancy):
        value = fn(pts)
        assert np.isfinite(value)
        assert value >= 0.0
