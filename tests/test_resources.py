"""Tests for functional-unit pools and structural hazards."""

import pytest

from repro.simulator import isa
from repro.simulator.config import ProcessorConfig
from repro.simulator.resources import FUPool, ResourceSet


class TestFUPool:
    def test_free_unit_starts_immediately(self):
        pool = FUPool("ialu", 2)
        assert pool.request(5.0, interval=1) == 5.0

    def test_contention_serialises(self):
        pool = FUPool("div", 1)
        assert pool.request(0.0, interval=10) == 0.0
        # Second request at t=2 must wait for the unpipelined unit.
        assert pool.request(2.0, interval=10) == 10.0

    def test_multiple_units_overlap(self):
        pool = FUPool("alu", 2)
        assert pool.request(0.0, interval=5) == 0.0
        assert pool.request(0.0, interval=5) == 0.0
        assert pool.request(0.0, interval=5) == 5.0

    def test_picks_earliest_free_unit(self):
        pool = FUPool("alu", 2)
        pool.request(0.0, interval=10)  # unit A busy until 10
        pool.request(0.0, interval=2)  # unit B busy until 2
        assert pool.request(1.0, interval=1) == 2.0  # unit B again

    def test_wait_accounting(self):
        pool = FUPool("div", 1)
        pool.request(0.0, interval=10)
        pool.request(0.0, interval=10)
        assert pool.total_wait == 10.0
        assert pool.mean_wait == 5.0

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            FUPool("x", 0)


class TestResourceSet:
    def test_pipelined_alu_has_unit_interval(self):
        rs = ResourceSet(ProcessorConfig(num_ialu=1))
        assert rs.request(isa.IALU, 0.0) == 0.0
        assert rs.request(isa.IALU, 0.0) == 1.0

    def test_unpipelined_divider_blocks(self):
        rs = ResourceSet(ProcessorConfig(num_imult=1))
        rs.request(isa.IDIV, 0.0)
        lat, interval = isa.OP_TIMING[isa.IDIV]
        assert rs.request(isa.IDIV, 0.0) == interval

    def test_div_and_mult_share_pool(self):
        rs = ResourceSet(ProcessorConfig(num_imult=1))
        rs.request(isa.IDIV, 0.0)
        assert rs.request(isa.IMULT, 0.0) > 0.0

    def test_mem_ports_limit(self):
        rs = ResourceSet(ProcessorConfig(num_mem_ports=2))
        assert rs.request(isa.LOAD, 0.0) == 0.0
        assert rs.request(isa.STORE, 0.0) == 0.0
        assert rs.request(isa.LOAD, 0.0) == 1.0

    def test_stats(self):
        rs = ResourceSet(ProcessorConfig())
        rs.request(isa.IALU, 0.0)
        stats = rs.stats()
        assert "fu_ialu_mean_wait" in stats


class TestIsa:
    def test_all_ops_have_timing_and_fu(self):
        for op in range(isa.NUM_OP_CLASSES):
            assert op in isa.OP_TIMING
            assert op in isa.FU_CLASS
            assert isa.op_name(op)

    def test_predicates(self):
        assert isa.is_memory(isa.LOAD) and isa.is_memory(isa.STORE)
        assert not isa.is_memory(isa.IALU)
        assert isa.is_control(isa.BRANCH) and isa.is_control(isa.JUMP)
        assert not isa.is_control(isa.FPALU)

    def test_unknown_op_name(self):
        with pytest.raises(ValueError):
            isa.op_name(99)
