"""Tests for cache replacement policies and the predictor-family option."""

import pytest

from repro.simulator.branch import (
    Bimodal,
    GShare,
    Perceptron,
    Tournament,
    make_direction_predictor,
)
from repro.simulator.cache import Cache
from repro.simulator.config import ProcessorConfig
from repro.simulator.simulator import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import PROFILES


class TestReplacementPolicies:
    def _cyclic_sweep(self, policy, lines=24, reps=4):
        c = Cache(1, 64, 2, policy=policy)  # 16-line cache
        for _ in range(reps):
            for i in range(lines):
                c.access(i * 64)
        return c

    def test_lru_thrashes_on_cyclic_sweep(self):
        # The textbook LRU pathology: a cyclic working set slightly larger
        # than the cache misses on every access.
        assert self._cyclic_sweep("lru").miss_rate == 1.0

    def test_fifo_thrashes_on_cyclic_sweep(self):
        assert self._cyclic_sweep("fifo").miss_rate == 1.0

    def test_random_keeps_some_lines(self):
        assert self._cyclic_sweep("random").miss_rate < 0.9

    def test_random_is_deterministic(self):
        a = self._cyclic_sweep("random")
        b = self._cyclic_sweep("random")
        assert a.misses == b.misses

    def test_lru_beats_fifo_on_skewed_reuse(self):
        # A hot line re-touched between conflicting fills survives under
        # LRU but ages out under FIFO.
        def run(policy):
            c = Cache(1, 64, 2, policy=policy)
            stride = 16 * 64  # same-set stride
            misses_on_hot = 0
            c.access(0)  # hot line
            for i in range(1, 40):
                c.access(i * stride)
                if not c.access(0):
                    misses_on_hot += 1
            return misses_on_hot

        assert run("lru") < run("fifo")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Cache(1, 64, 2, policy="plru")


class TestPredictorFamilies:
    TRACE = generate_trace(PROFILES["crafty"], 6000, seed=12)

    def test_factory_dispatch(self):
        assert isinstance(make_direction_predictor(
            ProcessorConfig(bpred_kind="bimodal")), Bimodal)
        assert isinstance(make_direction_predictor(
            ProcessorConfig(bpred_kind="gshare")), GShare)
        assert isinstance(make_direction_predictor(
            ProcessorConfig(bpred_kind="tournament")), Tournament)
        assert isinstance(make_direction_predictor(
            ProcessorConfig(bpred_kind="perceptron")), Perceptron)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_direction_predictor(ProcessorConfig(bpred_kind="tage"))

    @pytest.mark.parametrize("kind", ["bimodal", "gshare", "tournament", "perceptron"])
    def test_all_kinds_simulate(self, kind):
        result = simulate(ProcessorConfig(bpred_kind=kind), self.TRACE)
        assert 0.0 <= result.branch_mispredict_rate <= 1.0
        assert result.cpi > 0

    def test_tournament_at_least_matches_gshare(self):
        gshare = simulate(ProcessorConfig(bpred_kind="gshare"), self.TRACE)
        tour = simulate(ProcessorConfig(bpred_kind="tournament"), self.TRACE)
        assert tour.branch_mispredict_rate <= gshare.branch_mispredict_rate + 0.02


class TestPerceptron:
    def test_learns_bias(self):
        p = Perceptron(64, history_bits=8)
        for _ in range(50):
            p.update(0x400, True)
        assert p.predict(0x400) is True

    def test_learns_alternating_pattern(self):
        p = Perceptron(64, history_bits=8)
        wrong = 0
        for i in range(600):
            t = bool(i % 2)
            if i > 200 and p.predict(0x400) != t:
                wrong += 1
            p.update(0x400, t)
        assert wrong < 20

    def test_weights_saturate(self):
        p = Perceptron(64, history_bits=4)
        for _ in range(10_000):
            p.update(0x400, True)
        w = p._weights[(0x400 >> 2) & (64 - 1)]
        assert all(abs(v) <= 127 for v in w)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Perceptron(100)
        with pytest.raises(ValueError):
            Perceptron(64, history_bits=0)
