"""Tests for the memoised simulation runner."""

import json

import numpy as np
import pytest

from repro.core.design_space import paper_design_space
from repro.experiments.runner import SimulationRunner


@pytest.fixture
def point():
    return {
        "pipe_depth": 12, "rob_size": 64, "iq_frac": 0.5, "lsq_frac": 0.5,
        "l2_size_kb": 1024, "l2_lat": 12, "il1_size_kb": 32,
        "dl1_size_kb": 32, "dl1_lat": 2,
    }


def make_runner(tmp_path, **kwargs):
    kwargs.setdefault("trace_length", 2000)
    kwargs.setdefault("cache_dir", tmp_path)
    return SimulationRunner("mcf", **kwargs)


class TestMemoisation:
    def test_repeat_point_uses_memory_cache(self, tmp_path, point):
        runner = make_runner(tmp_path)
        first = runner.result_at(point)
        assert runner.simulations_run == 1
        second = runner.result_at(point)
        assert runner.simulations_run == 1
        assert runner.cache_hits == 1
        assert first == second

    def test_disk_cache_survives_process(self, tmp_path, point):
        runner = make_runner(tmp_path)
        space = paper_design_space()
        runner.cpi(space.as_array(point))
        fresh = make_runner(tmp_path)
        fresh.cpi(space.as_array(point))
        assert fresh.simulations_run == 0
        assert fresh.cache_hits == 1

    def test_cache_file_is_json(self, tmp_path, point):
        runner = make_runner(tmp_path)
        space = paper_design_space()
        runner.cpi(space.as_array(point))
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert all("cpi" in v for v in payload.values())

    def test_corrupt_cache_ignored(self, tmp_path, point):
        first = make_runner(tmp_path)
        first._cache_path.write_text("{not json")
        runner = make_runner(tmp_path)
        runner.result_at(point)
        assert runner.simulations_run == 1

    def test_no_disk_cache(self, point):
        runner = SimulationRunner("mcf", trace_length=2000, cache_dir=None)
        runner.result_at(point)
        runner.result_at(point)
        assert runner.simulations_run == 1  # memory memoisation still works


class TestMetrics:
    def test_cpi_vectorised(self, tmp_path, point):
        runner = make_runner(tmp_path)
        space = paper_design_space()
        pts = np.vstack([space.as_array(point), space.as_array(point)])
        values = runner.cpi(pts)
        assert values.shape == (2,)
        assert values[0] == values[1] > 0

    def test_power_metric(self, tmp_path, point):
        runner = make_runner(tmp_path)
        space = paper_design_space()
        power = runner.power(space.as_array(point))
        assert power[0] > 0

    def test_distinct_trace_lengths_distinct_caches(self, tmp_path, point):
        space = paper_design_space()
        a = make_runner(tmp_path, trace_length=1000)
        b = make_runner(tmp_path, trace_length=2000)
        a.cpi(space.as_array(point))
        b.cpi(space.as_array(point))
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_repr(self, tmp_path):
        assert "mcf" in repr(make_runner(tmp_path))


class TestFingerprint:
    def test_fingerprint_stable_across_instances(self, tmp_path):
        a = make_runner(tmp_path)
        b = make_runner(tmp_path)
        assert a._cache_path == b._cache_path

    def test_fingerprint_differs_across_benchmarks(self, tmp_path):
        a = SimulationRunner("mcf", trace_length=2000, cache_dir=tmp_path)
        b = SimulationRunner("twolf", trace_length=2000, cache_dir=tmp_path)
        assert a._cache_path != b._cache_path

    def test_fingerprint_differs_across_seeds(self, tmp_path):
        a = SimulationRunner("mcf", trace_length=2000, seed=0, cache_dir=tmp_path)
        b = SimulationRunner("mcf", trace_length=2000, seed=1, cache_dir=tmp_path)
        assert a._cache_path != b._cache_path
