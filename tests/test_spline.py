"""Tests for the regression-spline baseline (Lee & Brooks family)."""

import numpy as np
import pytest

from repro.models.spline import Hinge, SplineModel, SplineTerm


class TestHinge:
    def test_positive_hinge(self):
        h = Hinge(0, 0.5, +1)
        x = np.array([[0.2], [0.8]])
        np.testing.assert_allclose(h.evaluate(x), [0.0, 0.3])

    def test_negative_hinge(self):
        h = Hinge(0, 0.5, -1)
        x = np.array([[0.2], [0.8]])
        np.testing.assert_allclose(h.evaluate(x), [0.3, 0.0])

    def test_labels(self):
        assert "x0" in Hinge(0, 0.5, +1).label()
        assert SplineTerm(()).label() == "1"


class TestSplineTerm:
    def test_product_of_hinges(self):
        term = SplineTerm((Hinge(0, 0.0, +1), Hinge(1, 0.0, +1)))
        x = np.array([[0.5, 0.4]])
        assert term.evaluate(x)[0] == pytest.approx(0.2)

    def test_intercept_term(self):
        term = SplineTerm(())
        np.testing.assert_allclose(term.evaluate(np.zeros((3, 2))), 1.0)

    def test_degree(self):
        assert SplineTerm(()).degree() == 0
        assert SplineTerm((Hinge(0, 0.1, 1),)).degree() == 1


class TestFit:
    def test_recovers_piecewise_linear_function(self, rng):
        x = rng.random((80, 2))
        y = 1.0 + 2.0 * np.maximum(0, x[:, 0] - 0.5)
        model = SplineModel.fit(x, y, max_terms=10)
        xt = rng.random((40, 2))
        yt = 1.0 + 2.0 * np.maximum(0, xt[:, 0] - 0.5)
        assert np.abs(model.predict(xt) - yt).max() < 0.15

    def test_approximates_smooth_function(self, rng):
        x = rng.random((100, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1] ** 2
        model = SplineModel.fit(x, y, max_terms=20)
        xt = rng.random((50, 2))
        yt = np.sin(3 * xt[:, 0]) + xt[:, 1] ** 2
        rmse = np.sqrt(np.mean((model.predict(xt) - yt) ** 2))
        assert rmse < 0.15

    def test_interaction_terms_when_needed(self, rng):
        x = rng.random((120, 2))
        y = 3.0 * x[:, 0] * x[:, 1]
        model = SplineModel.fit(x, y, max_terms=16, max_degree=2)
        assert any(t.degree() == 2 for t in model.terms)

    def test_additive_only_when_degree_one(self, rng):
        x = rng.random((60, 2))
        y = x[:, 0] + x[:, 1]
        model = SplineModel.fit(x, y, max_terms=10, max_degree=1)
        assert all(t.degree() <= 1 for t in model.terms)

    def test_pruning_keeps_model_small_on_simple_data(self, rng):
        x = rng.random((80, 3))
        y = 2.0 * x[:, 0] + 0.01 * rng.normal(size=80)
        model = SplineModel.fit(x, y, max_terms=20)
        assert len(model.terms) < 12

    def test_constant_data(self, rng):
        x = rng.random((20, 2))
        model = SplineModel.fit(x, np.full(20, 5.0), max_terms=6)
        assert model.predict(rng.random((5, 2))) == pytest.approx(5.0)

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            SplineModel.fit(rng.random((10, 2)), np.zeros(9))

    def test_describe_and_repr(self, rng):
        x = rng.random((30, 2))
        model = SplineModel.fit(x, x[:, 0], max_terms=6)
        assert model.describe().startswith("y = ")
        assert "SplineModel" in repr(model)

    def test_dimension_check(self, rng):
        x = rng.random((30, 3))
        model = SplineModel.fit(x, x[:, 0], max_terms=6)
        with pytest.raises(ValueError):
            model.predict(rng.random((5, 2)))
